#pragma once

/// \file stream_sim.h
/// StreamSim: discrete-event streaming delivery over a changing network.
/// The paper motivates safety-based routing with *dynamic* holes — node
/// failures, power exhaustion, jamming — yet an atomic `Router::route`
/// call can only ever see a frozen snapshot. StreamSim puts packet
/// injections, per-hop packet movement, and world changes on one shared
/// timeline (sim/event_queue.h), so failures land *between the hops* of
/// in-flight packets:
///
///  * injection events — packet i enters at its source at
///    `i * packet_interval`, one in-flight copy per scheme (the comparison
///    is paired, as everywhere else in the library);
///  * hop events — one in-flight copy advances one hop
///    (RouteStepper::step) per `hop_delay` of transmission time;
///  * failure waves — a batch of nodes dies (Network::with_failures): the
///    safety labeling continues *incrementally* from the previous fixpoint
///    (update_safety_after_failures; IncrementalStats recorded per wave),
///    and SLGF/SLGF2 route the rest of the stream on the updated labels;
///  * mobility re-pins (optional) — every node moves under a
///    random-waypoint process and the snapshot *continues incrementally*
///    (Network::with_moves): the spatial grid relocates, the unit-disk
///    adjacency is patched from the edge delta, and the safety labeling
///    continues bidirectionally from the previous fixpoint
///    (update_safety_after_moves — removals demote, additions promote).
///    Nodes killed by earlier waves stay dead (aliveness carries over).
///    The paper's "position-dependent information needs to re-constitute"
///    regime, collapsed into a local update wave; each re-pin is recorded
///    as a RepinRecord, optionally cross-checked against a from-scratch
///    compute_safety (StreamConfig::verify_relabeling).
///
/// Semantics at a topology change: the packet header travels with the
/// packet, but the substrate under it changed — each in-flight copy
/// *re-plans*: a fresh RouteStepper from its current node toward the same
/// destination over the new network, carrying its remaining TTL budget (a
/// re-plan never extends a packet's life). A copy whose current carrier
/// died in the wave is dropped (kNodeFailed). Hops, path length and local
/// minima accumulate across the re-planned segments.
///
/// Injection semantics are fully defined — never UB: a packet whose source
/// is dead at injection time (killed by an earlier wave), or whose source
/// id is out of range, is counted as a kNodeFailed drop for every scheme.
/// Same-instant ties resolve by FIFO push order (sim/event_queue.h): an
/// injection scheduled at exactly a wave's timestamp fires *before* the
/// wave (both are pushed up front, injections first), sees the pre-wave
/// substrate, and its copies are then immediately re-planned — or dropped,
/// if the wave killed their carrier — by the wave itself.
///
/// Determinism: the simulation draws randomness only from its own seeded
/// streams, so a run is a pure function of (initial network, StreamConfig)
/// — byte-identical reports across reruns and across sweep thread counts
/// (tests enforce this).
///
/// Two interchangeable engines advance the in-flight copies
/// (StreamConfig::engine):
///
///  * kFlightRecord (default) — the flight-record engine: per-flight state
///    lives in SoA arrays, stepper slots are pooled (reset in place on
///    re-plan; zero steady-state allocation), and because every hop costs
///    the same `hop_delay`, all copies due at the same instant advance in
///    one *tick* batch (sim/tick_scheduler.h) — the event heap carries one
///    event per distinct tick time plus the sparse control events, not one
///    event per flight-hop. With StreamConfig::threads > 1 each tick's
///    batch is stepped in parallel on a TaskPool and merged in flight-id
///    order; results are bit-identical across thread counts.
///  * kPerHopEvents — the legacy reference engine: one heap event per
///    flight per hop. Kept as the oracle for the equivalence property
///    tests.
///
/// Everything in StreamStats except `events` is byte-identical between the
/// two engines (tests enforce this across seeds, waves, mobility and
/// thread counts); `events` counts what the chosen engine actually popped
/// (per-hop events vs ticks + control events).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.h"
#include "core/network.h"
#include "mobility/waypoint.h"
#include "routing/packet.h"
#include "safety/incremental.h"
#include "stats/summary.h"

namespace spr {

/// Why one scheme's copy of a packet ended.
enum class StreamOutcome : unsigned char {
  kInFlight,    ///< still moving (only observable mid-run)
  kDelivered,   ///< reached its destination
  kDeadEnd,     ///< no eligible successor (RouteStatus::kDeadEnd)
  kTtlExpired,  ///< hop budget exhausted across all segments
  kNodeFailed,  ///< its carrier node died in a failure wave
};

/// One scheduled failure wave: `casualties` die at virtual time `time`.
/// Nodes already dead (or out of range) are ignored.
struct StreamWave {
  double time = 0.0;
  std::vector<NodeId> casualties;
};

/// Builds a failure schedule: `fraction` of the graph's nodes die across
/// `waves` waves evenly spaced over (0, span), drawn without replacement
/// from `rng`; the stream endpoints in `endpoints` are never chosen. The
/// shared schedule builder behind the streaming-delivery scenario and the
/// streaming_delivery example.
std::vector<StreamWave> spread_failure_waves(
    const UnitDiskGraph& g,
    std::span<const std::pair<NodeId, NodeId>> endpoints, double fraction,
    int waves, double span, Rng& rng);

/// What one wave did to the labeling and to the in-flight packets.
struct WaveRecord {
  double time = 0.0;
  std::size_t casualties = 0;         ///< alive nodes actually killed
  std::size_t packets_in_flight = 0;  ///< copies re-planned over the new net
  std::size_t packets_dropped = 0;    ///< copies whose carrier died
  IncrementalStats relabel;           ///< incremental safety update cost
  /// Filled when StreamConfig::verify_relabeling is set: whether the
  /// incrementally updated labeling equals a from-scratch compute_safety
  /// on the degraded graph (statuses and anchors).
  bool verified = false;
  bool matches_full_recompute = false;
};

/// What one mobility re-pin did to the substrate, the labeling and the
/// in-flight packets.
struct RepinRecord {
  double time = 0.0;
  std::size_t moved = 0;          ///< nodes whose position changed
  std::size_t edges_added = 0;    ///< unit-disk edges that appeared
  std::size_t edges_removed = 0;  ///< unit-disk edges that vanished
  std::size_t packets_in_flight = 0;  ///< copies re-planned over the new net
  std::size_t packets_dropped = 0;    ///< copies whose carrier was gone
  IncrementalStats relabel;  ///< bidirectional incremental update cost
  /// Filled when StreamConfig::verify_relabeling is set: whether the
  /// incrementally continued labeling equals a from-scratch compute_safety
  /// on the moved graph (statuses and anchors).
  bool verified = false;
  bool matches_full_recompute = false;
};

/// Per-scheme totals of one stream run.
struct StreamSchemeStats {
  std::string label;
  std::size_t injected = 0;
  std::size_t delivered = 0;
  std::size_t dead_end = 0;
  std::size_t ttl_expired = 0;
  std::size_t node_failed = 0;
  Summary hops;          ///< delivered copies, across re-planned segments
  Summary length;        ///< delivered copies, meters
  Summary stretch_hops;  ///< hops / BFS optimum at injection time
  Summary latency;       ///< delivered copies, virtual seconds
  Summary replans;       ///< per finished copy: mid-flight re-plans
  Summary local_minima;  ///< per finished copy, across re-planned segments

  double delivery_ratio() const noexcept {
    return injected == 0
               ? 0.0
               : static_cast<double>(delivered) / static_cast<double>(injected);
  }
};

/// The full result of one stream run.
struct StreamStats {
  double virtual_time = 0.0;  ///< timestamp of the last event
  std::size_t events = 0;     ///< events processed
  std::size_t repins = 0;     ///< mobility re-pins performed
  std::vector<WaveRecord> waves;
  std::vector<RepinRecord> repin_records;  ///< one per re-pin, in time order
  std::vector<StreamSchemeStats> schemes;  ///< in StreamConfig::schemes order
};

/// Which internal engine advances the in-flight copies (see the file
/// comment). Both produce byte-identical StreamStats except `events`.
enum class StreamEngine : unsigned char {
  kFlightRecord,  ///< tick-batched SoA flight records (default)
  kPerHopEvents,  ///< legacy one-heap-event-per-hop reference engine
};

/// Parameters of a stream run.
struct StreamConfig {
  /// Schemes to race over the same packets; empty = the paper's four.
  std::vector<SchemeSpec> schemes;
  /// (source, sink) endpoints; packet i uses pairs[i % pairs.size()].
  /// Must be non-empty.
  std::vector<std::pair<NodeId, NodeId>> pairs;
  int packets = 50;              ///< injections
  double packet_interval = 1.0;  ///< virtual seconds between injections
  double hop_delay = 0.25;       ///< virtual seconds per hop
  RouteOptions route_options{};
  /// Failure waves, in any order (scheduled by their `time`).
  std::vector<StreamWave> waves;
  /// When > 0, a waypoint re-pin fires every `mobility_interval` virtual
  /// seconds (while traffic remains): every node moves `mobility_dt`
  /// seconds under `waypoint`, and the snapshot continues incrementally
  /// through Network::with_moves (relocated grid, patched adjacency,
  /// bidirectional safety update — see the file comment).
  double mobility_interval = 0.0;
  double mobility_dt = 20.0;
  WaypointConfig waypoint{};
  std::uint64_t seed = 1;  ///< waypoint process seed
  /// Cross-check each wave's and each re-pin's incremental relabeling
  /// against a from-scratch compute_safety on the changed graph
  /// (WaveRecord::verified / RepinRecord::verified).
  bool verify_relabeling = false;
  StreamEngine engine = StreamEngine::kFlightRecord;
  /// Flight-record engine only: worker threads stepping each tick's batch
  /// (<= 1 = serial on the calling thread). Bit-identical results across
  /// thread counts.
  int threads = 1;
};

/// The simulator. Owns the network (the substrate is replaced as waves and
/// re-pins land) and every in-flight packet copy.
class StreamSim {
 public:
  /// `initial` is consumed; structures any scheme needs are forced up
  /// front so wave relabeling continues from a built fixpoint.
  StreamSim(Network initial, StreamConfig config);
  ~StreamSim();

  StreamSim(const StreamSim&) = delete;
  StreamSim& operator=(const StreamSim&) = delete;

  /// Runs the whole stream to completion and returns the totals. Call
  /// once per StreamSim.
  StreamStats run();

  /// The current substrate (post-run: the final degraded/re-pinned one).
  const Network& network() const noexcept { return net_; }

 private:
  struct Flight;
  struct Packet;
  struct Records;

  void rebuild_routers();
  void harvest(Flight& flight);
  void finalize(Flight& flight, StreamOutcome outcome, double now);
  void replan_flights(double now, std::size_t* in_flight,
                      std::size_t* dropped);
  void run_per_hop();
  void run_flight_record();
  /// Fills oracle_cache_ for the current topology epoch: one hops-only
  /// OracleBatch over the eligible pairs (one BFS per distinct source).
  void build_epoch_oracle();

  Network net_;
  StreamConfig config_;
  std::vector<std::unique_ptr<Router>> routers_;  ///< one per scheme
  std::vector<Packet> packets_;       ///< kPerHopEvents engine only
  std::unique_ptr<Records> rec_;      ///< kFlightRecord engine only
  WaypointModel mobility_;
  /// Per-pair BFS optimum for the current topology epoch (packets cycle
  /// over few pairs; the graph only changes at waves/re-pins, which
  /// invalidate this). Filled per epoch by build_epoch_oracle.
  std::vector<std::size_t> oracle_cache_;
  bool oracle_ready_ = false;
  std::size_t live_ = 0;  ///< copies currently in flight
  StreamStats stats_;
  bool ran_ = false;
};

}  // namespace spr
