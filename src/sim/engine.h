#pragma once

/// \file engine.h
/// Synchronous round-based message-passing engine (paper Section 3: "we
/// describe all the schemes in a synchronous, round-based system").
///
/// Each node runs a process callback once per round with the messages its
/// neighbors broadcast in the previous round; it may answer with one
/// broadcast of its own. The engine runs until quiescence (a round in which
/// nothing was sent) or a round cap, and accounts messages and rounds —
/// the construction-cost experiment reads these counters.

#include <cstddef>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "graph/node.h"
#include "graph/unit_disk.h"

namespace spr {

/// Totals reported by a run.
struct EngineStats {
  std::size_t rounds = 0;            ///< rounds executed (including the quiescent one)
  std::size_t broadcasts = 0;        ///< broadcast operations performed
  std::size_t message_receptions = 0;///< per-link deliveries (= sum of sender degrees)

  /// Renders "rounds=R broadcasts=B receptions=M" for logs.
  std::string to_string() const;
};

/// Round-based engine carrying payloads of type `Payload` (a regular,
/// copyable value type).
template <typename Payload>
class RoundEngine {
 public:
  /// One received message.
  struct Incoming {
    NodeId sender;
    Payload payload;
  };

  /// Node behaviour: invoked each round; returning a payload broadcasts it
  /// to all neighbors for delivery next round.
  using Process =
      std::function<std::optional<Payload>(NodeId self, std::size_t round,
                                           std::span<const Incoming> inbox)>;

  explicit RoundEngine(const UnitDiskGraph& graph) : graph_(graph) {}

  /// Runs until quiescence or `max_rounds`. The process is called for every
  /// alive node each round (round 0 has empty inboxes, letting nodes send
  /// their initial broadcasts).
  EngineStats run(const Process& process, std::size_t max_rounds) {
    const std::size_t n = graph_.size();
    std::vector<std::vector<Incoming>> inbox(n), next_inbox(n);
    EngineStats stats;
    for (std::size_t round = 0; round < max_rounds; ++round) {
      ++stats.rounds;
      bool any_sent = false;
      for (NodeId u = 0; u < n; ++u) {
        if (!graph_.alive(u)) continue;
        std::optional<Payload> out = process(u, round, inbox[u]);
        if (out) {
          any_sent = true;
          ++stats.broadcasts;
          for (NodeId v : graph_.neighbors(u)) {
            next_inbox[v].push_back(Incoming{u, *out});
            ++stats.message_receptions;
          }
        }
      }
      for (NodeId u = 0; u < n; ++u) {
        inbox[u] = std::move(next_inbox[u]);
        next_inbox[u].clear();
      }
      if (!any_sent) break;  // quiescent: nothing in flight
    }
    return stats;
  }

 private:
  const UnitDiskGraph& graph_;
};

}  // namespace spr
