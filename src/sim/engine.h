#pragma once

/// \file engine.h
/// Synchronous round-based message-passing engine (paper Section 3: "we
/// describe all the schemes in a synchronous, round-based system").
///
/// Each node runs a process callback once per round with the messages its
/// neighbors broadcast in the previous round; it may answer with one
/// broadcast of its own. The engine runs until quiescence (a round in which
/// nothing was sent) or a round cap, and accounts messages and rounds —
/// the construction-cost experiment reads these counters.
///
/// Rounds sit on the shared discrete-event core (sim/event_queue.h): a
/// broadcast in round r pushes one delivery event per neighbor at virtual
/// time r+1, and the engine drains the queue up to the current round into
/// the inboxes before activating the nodes. The queue's FIFO tie-breaking
/// preserves the classic inbox order (senders in node-id order, neighbors
/// in sorted order), so the rebase is observationally identical to the
/// hand-rolled double-buffered inbox loop it replaced.

#include <cstddef>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "graph/node.h"
#include "graph/unit_disk.h"
#include "sim/event_queue.h"

namespace spr {

/// Totals reported by a run. Broadcast/reception counters live in the
/// shared SimStats base.
struct EngineStats : SimStats {
  std::size_t rounds = 0;  ///< rounds executed (including the quiescent one)

  /// Renders "rounds=R broadcasts=B receptions=M" for logs.
  std::string to_string() const;
};

/// Round-based engine carrying payloads of type `Payload` (a regular,
/// copyable value type).
template <typename Payload>
class RoundEngine {
 public:
  /// One received message.
  struct Incoming {
    NodeId sender;
    Payload payload;
  };

  /// Node behaviour: invoked each round; returning a payload broadcasts it
  /// to all neighbors for delivery next round.
  using Process =
      std::function<std::optional<Payload>(NodeId self, std::size_t round,
                                           std::span<const Incoming> inbox)>;

  explicit RoundEngine(const UnitDiskGraph& graph) : graph_(graph) {}

  /// Runs until quiescence or `max_rounds`. The process is called for every
  /// alive node each round (round 0 has empty inboxes, letting nodes send
  /// their initial broadcasts).
  EngineStats run(const Process& process, std::size_t max_rounds) {
    struct Delivery {
      NodeId target;
      Incoming message;
    };
    const std::size_t n = graph_.size();
    std::vector<std::vector<Incoming>> inbox(n);
    EventQueue<Delivery> queue;
    SimClock clock;
    EngineStats stats;
    for (std::size_t round = 0; round < max_rounds; ++round) {
      ++stats.rounds;
      // Deliver everything scheduled for this round (sent last round).
      // Round times are small exact integers, so the comparison is exact.
      while (!queue.empty() &&
             queue.top().time <= static_cast<double>(round)) {
        auto timed = queue.pop();
        clock.advance_to(timed.time);
        inbox[timed.event.target].push_back(std::move(timed.event.message));
      }
      bool any_sent = false;
      for (NodeId u = 0; u < n; ++u) {
        if (!graph_.alive(u)) continue;
        std::optional<Payload> out = process(u, round, inbox[u]);
        if (out) {
          any_sent = true;
          ++stats.broadcasts;
          for (NodeId v : graph_.neighbors(u)) {
            queue.push(static_cast<double>(round + 1),
                       Delivery{v, Incoming{u, *out}});
            // Counted at send (= sum of sender degrees), matching the
            // engine's historical accounting even when the round cap
            // leaves the final sends undelivered.
            ++stats.receptions;
          }
        }
      }
      for (auto& box : inbox) box.clear();
      if (!any_sent) break;  // quiescent: nothing in flight
    }
    return stats;
  }

 private:
  const UnitDiskGraph& graph_;
};

}  // namespace spr
