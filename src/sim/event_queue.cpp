#include "sim/event_queue.h"

#include <sstream>

namespace spr {

std::string SimStats::counters_string() const {
  std::ostringstream out;
  out << "broadcasts=" << broadcasts << " receptions=" << receptions;
  return out.str();
}

}  // namespace spr
