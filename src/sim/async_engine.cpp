#include "sim/async_engine.h"

#include <sstream>

namespace spr {

std::string AsyncEngineStats::to_string() const {
  std::ostringstream out;
  out << "activations=" << activations << " " << counters_string()
      << " t=" << virtual_time;
  return out.str();
}

}  // namespace spr
