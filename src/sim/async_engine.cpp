#include "sim/async_engine.h"

#include <sstream>

namespace spr {

std::string AsyncEngineStats::to_string() const {
  std::ostringstream out;
  out << "activations=" << activations << " broadcasts=" << broadcasts
      << " receptions=" << receptions << " t=" << virtual_time;
  return out.str();
}

}  // namespace spr
