#pragma once

/// \file event_queue.h
/// The shared discrete-event core: a deterministic timed event queue, a
/// virtual clock, and the FIFO per-link delay model. Extracted from
/// AsyncEngine (which previously kept all three private) so every
/// simulator in the library — the round engine, the asynchronous
/// message-passing engine, and the streaming-delivery simulator
/// (sim/stream_sim.h) — schedules on one timeline abstraction with one
/// tie-breaking rule.
///
/// Determinism: events are totally ordered by (time, insertion sequence),
/// so two events at the same instant pop in the order they were pushed.
/// Runs that push the same events in the same order are bit-identical,
/// which is what the engines' fixpoint tests and the streaming scenario's
/// reproducibility guarantee rest on.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "deploy/rng.h"
#include "graph/node.h"
#include "util/flat_map.h"

namespace spr {

/// Virtual simulation clock. Advances monotonically as events are
/// consumed; never runs backwards even if asked to.
class SimClock {
 public:
  double now() const noexcept { return now_; }

  /// Moves the clock forward to `t` (no-op when `t` is in the past —
  /// events are popped in time order, so this only guards against
  /// same-instant jitter).
  void advance_to(double t) noexcept {
    if (t > now_) now_ = t;
  }

  void reset() noexcept { now_ = 0.0; }

 private:
  double now_ = 0.0;
};

/// Min-heap of timed events carrying payloads of type `Event`. Ties on
/// time break by insertion sequence (FIFO), making the pop order total and
/// deterministic for a given push sequence.
template <typename Event>
class EventQueue {
 public:
  struct Timed {
    double time = 0.0;
    std::uint64_t seq = 0;
    Event event;
  };

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }

  void push(double time, Event event) {
    heap_.push_back(Timed{time, next_seq_++, std::move(event)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }

  /// The earliest event (undefined when empty).
  const Timed& top() const noexcept { return heap_.front(); }

  /// Removes and returns the earliest event (undefined when empty).
  Timed pop() {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Timed timed = std::move(heap_.back());
    heap_.pop_back();
    return timed;
  }

 private:
  /// Strict-weak "fires later" order; the heap keeps the earliest on top.
  struct Later {
    bool operator()(const Timed& a, const Timed& b) const noexcept {
      return a.time > b.time || (a.time == b.time && a.seq > b.seq);
    }
  };

  std::vector<Timed> heap_;
  std::uint64_t next_seq_ = 0;
};

/// FIFO per-directed-link delay model: each transmission draws an
/// independent delay uniformly from [min_delay, max_delay), and two
/// messages sent over the same (sender, receiver) link are delivered in
/// send order (a later send is scheduled no earlier than the link's
/// previously scheduled delivery). Without the FIFO clamp, a stale state
/// broadcast could overwrite a newer one in a receiver's cache and
/// protocols relying on last-writer-wins caches would not converge.
class FifoLinkDelays {
 public:
  FifoLinkDelays(std::size_t node_count, double min_delay, double max_delay)
      : node_count_(node_count),
        min_delay_(min_delay),
        max_delay_(max_delay),
        // Unit-disk broadcasts touch ~degree links per node; reserving a
        // few slots per node covers the steady state without committing
        // node_count^2 memory for links that never carry traffic.
        link_clock_(std::min<std::size_t>(node_count * 4, 1u << 20)) {}

  /// The delivery time of a message sent from `from` to `to` at `now`.
  /// Draws one uniform from `rng`, so calling order defines the run.
  double schedule(NodeId from, NodeId to, double now, Rng& rng) {
    double delay = rng.uniform(min_delay_, max_delay_);
    double& clock = link_clock_.find_or_insert(link_key(from, to), 0.0);
    double when = std::max(now + delay, clock + 1e-9);
    clock = when;
    return when;
  }

 private:
  std::uint64_t link_key(NodeId from, NodeId to) const noexcept {
    return static_cast<std::uint64_t>(from) * node_count_ + to;
  }

  std::size_t node_count_;
  double min_delay_;
  double max_delay_;
  /// Last scheduled delivery time per directed link, in a flat
  /// open-addressed table (the sim's hottest map; see util/flat_map.h).
  FlatMap64<double> link_clock_;
};

/// Message-traffic counters shared by every engine on the event core.
struct SimStats {
  std::size_t broadcasts = 0;  ///< broadcast operations performed
  std::size_t receptions = 0;  ///< per-link deliveries

 protected:
  /// "broadcasts=B receptions=R" — the shared tail of the engine stat
  /// lines (EngineStats / AsyncEngineStats prepend their own counters).
  std::string counters_string() const;
};

}  // namespace spr
