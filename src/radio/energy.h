#pragma once

/// \file energy.h
/// First-order radio energy model (Heinzelman et al.) used to turn routed
/// paths into the energy numbers the paper's motivation talks about
/// ("avoids wasting energy in detours ... conserve more energy used in data
/// transmission"). Transmission cost has an electronics term and a
/// distance-dependent amplifier term; reception costs electronics only.

#include <cstddef>

#include "graph/unit_disk.h"
#include "routing/packet.h"

namespace spr {

/// Model parameters. Defaults are the standard first-order constants.
struct EnergyModel {
  double electronics_j_per_bit = 50e-9;   ///< E_elec, TX and RX
  double amplifier_j_per_bit_m2 = 100e-12;///< eps_amp, free-space (d^2 law)
  double idle_listen_j_per_s = 0.0;       ///< not modeled by default

  /// Joules to transmit `bits` over `meters` (one hop, one receiver).
  double tx_energy(double meters, double bits) const noexcept {
    return (electronics_j_per_bit + amplifier_j_per_bit_m2 * meters * meters) *
           bits;
  }

  /// Joules to receive `bits`.
  double rx_energy(double bits) const noexcept {
    return electronics_j_per_bit * bits;
  }

  /// Joules for one unicast hop (TX + one RX).
  double hop_energy(double meters, double bits) const noexcept {
    return tx_energy(meters, bits) + rx_energy(bits);
  }
};

/// Energy accounting of one routed path.
struct PathEnergy {
  double total_j = 0.0;        ///< sum over hops
  double max_hop_j = 0.0;      ///< most expensive single hop
  std::size_t relays = 0;      ///< intermediate nodes involved
};

/// Energy to push one packet of `bits` along the delivered path `r` over
/// graph `g` (zero when the path has no hops).
PathEnergy path_energy(const UnitDiskGraph& g, const PathResult& r,
                       const EnergyModel& model, double bits);

/// Convenience: total energy for `packets` packets (the streaming case).
double stream_energy(const UnitDiskGraph& g, const PathResult& r,
                     const EnergyModel& model, double bits,
                     std::size_t packets);

}  // namespace spr
