#include "radio/energy.h"

#include <algorithm>

namespace spr {

PathEnergy path_energy(const UnitDiskGraph& g, const PathResult& r,
                       const EnergyModel& model, double bits) {
  PathEnergy out;
  if (r.path.size() < 2) return out;
  for (std::size_t i = 1; i < r.path.size(); ++i) {
    double meters = distance(g.position(r.path[i - 1]), g.position(r.path[i]));
    double hop = model.hop_energy(meters, bits);
    out.total_j += hop;
    out.max_hop_j = std::max(out.max_hop_j, hop);
  }
  out.relays = r.path.size() - 2;
  return out;
}

double stream_energy(const UnitDiskGraph& g, const PathResult& r,
                     const EnergyModel& model, double bits,
                     std::size_t packets) {
  return path_energy(g, r, model, bits).total_j * static_cast<double>(packets);
}

}  // namespace spr
