#pragma once

/// \file interference.h
/// Interference footprint of a routed path — the paper's second motivation:
/// "less interference occurs in other transmissions when fewer nodes are
/// involved in the transmission". We quantify this as the set of nodes
/// whose radios overhear at least one hop of the path (every node within
/// the transmission radius of some relay), and as pairwise path conflicts.

#include <vector>

#include "graph/unit_disk.h"
#include "routing/packet.h"

namespace spr {

/// Interference accounting of one path.
struct InterferenceFootprint {
  std::size_t transmitters = 0;   ///< nodes that transmit (path minus dest)
  std::size_t overhearers = 0;    ///< non-path nodes within range of a TX
  std::size_t blocked_nodes = 0;  ///< transmitters + overhearers: nodes that
                                  ///< cannot concurrently receive other traffic
};

/// Computes the footprint of `r` over `g`.
InterferenceFootprint interference_footprint(const UnitDiskGraph& g,
                                             const PathResult& r);

/// True when two paths conflict: some transmitter of one is within range of
/// some node of the other (they cannot be scheduled concurrently on one
/// channel).
bool paths_conflict(const UnitDiskGraph& g, const PathResult& a,
                    const PathResult& b);

/// Of `paths`, the maximum subset size schedulable concurrently under the
/// pairwise-conflict model, by greedy coloring (an upper-bound heuristic,
/// exact for interval-like conflict patterns). Returns per-path channel ids;
/// the number of distinct channels is the schedule length.
std::vector<int> greedy_schedule(const UnitDiskGraph& g,
                                 const std::vector<PathResult>& paths);

}  // namespace spr
