#include "radio/interference.h"

#include <algorithm>
#include <unordered_set>

namespace spr {

InterferenceFootprint interference_footprint(const UnitDiskGraph& g,
                                             const PathResult& r) {
  InterferenceFootprint out;
  if (r.path.size() < 2) return out;
  std::unordered_set<NodeId> on_path(r.path.begin(), r.path.end());
  std::unordered_set<NodeId> touched;
  out.transmitters = r.path.size() - 1;
  for (std::size_t i = 0; i + 1 < r.path.size(); ++i) {
    for (NodeId v : g.neighbors(r.path[i])) {
      if (!on_path.contains(v)) touched.insert(v);
    }
  }
  out.overhearers = touched.size();
  out.blocked_nodes = out.transmitters + out.overhearers;
  return out;
}

bool paths_conflict(const UnitDiskGraph& g, const PathResult& a,
                    const PathResult& b) {
  if (a.path.size() < 2 || b.path.size() < 2) return false;
  std::unordered_set<NodeId> b_nodes(b.path.begin(), b.path.end());
  // a's transmitters reaching any node of b (or vice versa) is a conflict;
  // the relation is symmetric because links are.
  for (std::size_t i = 0; i + 1 < a.path.size(); ++i) {
    NodeId tx = a.path[i];
    if (b_nodes.contains(tx)) return true;
    for (NodeId v : g.neighbors(tx)) {
      if (b_nodes.contains(v)) return true;
    }
  }
  std::unordered_set<NodeId> a_nodes(a.path.begin(), a.path.end());
  for (std::size_t i = 0; i + 1 < b.path.size(); ++i) {
    NodeId tx = b.path[i];
    if (a_nodes.contains(tx)) return true;
    for (NodeId v : g.neighbors(tx)) {
      if (a_nodes.contains(v)) return true;
    }
  }
  return false;
}

std::vector<int> greedy_schedule(const UnitDiskGraph& g,
                                 const std::vector<PathResult>& paths) {
  const std::size_t n = paths.size();
  std::vector<int> channel(n, -1);
  // Conflict matrix once; greedy smallest-available-channel in index order.
  std::vector<std::vector<bool>> conflicts(n, std::vector<bool>(n, false));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      conflicts[i][j] = conflicts[j][i] = paths_conflict(g, paths[i], paths[j]);
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<bool> used(n + 1, false);
    for (std::size_t j = 0; j < n; ++j) {
      if (conflicts[i][j] && channel[j] >= 0) used[static_cast<size_t>(channel[j])] = true;
    }
    int c = 0;
    while (used[static_cast<size_t>(c)]) ++c;
    channel[i] = c;
  }
  return channel;
}

}  // namespace spr
