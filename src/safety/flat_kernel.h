#pragma once

/// \file flat_kernel.h
/// The flat SoA safety-labeling kernel: the shared engine under
/// `compute_safety`, `update_safety_after_failures` and
/// `update_safety_after_moves`.
///
/// Layout (vs the scalar oracle's array-of-SafetyTuple worklist):
///
///  * **Quadrant-bucketed CSR** (graph/quadrant_csr.h, cached per topology
///    epoch on the graph): every "neighbor inside Q_t(u)" loop is a
///    contiguous id-range walk with zero geometry calls.
///  * **Bitset SoA statuses**: one packed 64-bit word array per zone type.
///    The fixpoint loop probes single bits of a 4·n/8-byte working set
///    instead of reading ~168-byte SafetyTuple records; eligibility
///    (alive ∧ ¬edge-pinned) is a fifth word array; worklist dedup and
///    round masks are per-(node,type) keyed bit arrays.
///  * **Arena-backed scratch**: every worklist, flip list, bitmap and
///    cluster walk allocates from a caller-owned Arena (util/arena.h) with
///    exact reservations, so a steady-state repin epoch does zero general
///    heap allocation inside the kernel.
///  * **Parallel sweeps** (optional TaskPool): the initialization round,
///    large demotion frontiers (evaluated as synchronous rounds — the flip
///    set of a round is data-determined and applied in key order),
///    promotion cluster raises (independent per-cluster flood fills whose
///    union is order-invariant) and the independent per-type anchor passes
///    of Algorithm 2 all fan out. Every merge is id-ordered, so results are
///    bit-identical (statuses *and* anchors) to the serial kernel and to
///    the scalar oracle `compute_safety_scalar` for every thread count;
///    tests enforce this.
///
/// (node, type) pairs travel as packed keys `u*4 + zone_index(t)`.

#include <cstdint>
#include <span>

#include "deploy/interest_area.h"
#include "graph/quadrant_csr.h"
#include "graph/unit_disk.h"
#include "util/arena.h"

namespace spr {

class SafetyInfo;
class TaskPool;

/// Counters of one kernel run; `bench_micro` surfaces them so flat-vs-scalar
/// speedups are attributable to work saved, not just cycles.
struct LabelingStats {
  std::size_t init_flips = 0;      ///< vacuous-quadrant flips (round 0)
  std::size_t flips = 0;           ///< worklist demotions (1 -> 0)
  std::size_t pushes = 0;          ///< deduplicated worklist enqueues
  std::size_t reevaluations = 0;   ///< flip-condition evaluations
};

class FlatLabeler {
 public:
  static constexpr std::uint32_t key(NodeId u, int type_index) noexcept {
    return (u << 2) | static_cast<std::uint32_t>(type_index);
  }
  static constexpr NodeId key_node(std::uint32_t k) noexcept { return k >> 2; }
  static constexpr int key_type(std::uint32_t k) noexcept {
    return static_cast<int>(k & 3u);
  }

  /// Binds to one topology epoch; builds (or reuses) the graph's quadrant
  /// view and packs the eligibility bits. `area` may be null when only the
  /// anchor pass is needed. All scratch comes from `arena`; the caller
  /// resets the arena between epochs (see `scratch()`).
  FlatLabeler(const UnitDiskGraph& g, const InterestArea* area, Arena& arena);

  /// Statuses all safe — the fixpoint's starting point.
  void start_all_safe();
  /// Statuses from an existing labeling (incremental continuation).
  void start_from(const SafetyInfo& info);

  bool safe_bit(NodeId u, int type_index) const noexcept {
    return (safe_[type_index][u >> 6] >> (u & 63)) & 1u;
  }

  /// Definition 1 against the current bits: no safe member in Q_t(u).
  bool must_flip(NodeId u, int type_index) const noexcept;

  /// The initialization round against the all-safe labeling: S_t(u) flips
  /// iff Q_t(u) holds no neighbor at all. Evaluation fans out over `pool`;
  /// flips apply in key order and enqueue their observers, exactly like the
  /// scalar oracle.
  void initial_round(TaskPool* pool);

  /// Demotion seed; deduplicated. Returns whether the pair was newly queued.
  bool enqueue(NodeId u, int type_index);

  std::size_t queued() const noexcept { return fifo_count_; }

  /// Runs the demotion worklist to the greatest fixpoint. Serial FIFO drain
  /// (breadth-first coalesces re-enqueues of a pending pair into one visit),
  /// or synchronous parallel rounds over `pool` while the frontier is
  /// large. Returns the number of flips this call performed.
  std::size_t drain(TaskPool* pool);

  /// Every key flipped 1 -> 0 so far (initial_round + drain), in
  /// application order; apply to SafetyInfo tuples at the API boundary.
  std::span<const std::uint32_t> flipped() const noexcept {
    return {flips_.data(), flips_.size()};
  }

  /// Seeds one status bit directly, outside the worklist discipline — the
  /// spatial-tile layer uses it to initialize a shard's bits from the global
  /// labeling (ghost replicas included) and to mirror cross-halo promotions.
  /// No flip record, no observer fan-out.
  void set_status(NodeId u, int type_index, bool safe) noexcept {
    if (safe) {
      set_safe_bit(u, type_index);
    } else {
      clear_safe_bit(u, type_index);
    }
  }

  /// Applies an externally-decided demotion of (u, type) — the halo mirror
  /// of a flip the owning shard performed: clears the bit and enqueues the
  /// eligible, still-safe observers exactly as a local flip would, but
  /// records no flip (the owner did). Returns false (no-op) when the bit is
  /// already clear.
  bool mirror_demotion(NodeId u, int type_index);

  /// Promotion: re-raises to safe the connected type-t unsafe cluster (full
  /// adjacency, unsafe members) of every given source key that is currently
  /// unsafe — the touched-cluster relabel. Independent flood fills fan out
  /// over `pool`; the raised set is the union of the touched clusters, so
  /// it is claim-order invariant. Returns the raised keys ascending. The
  /// raised pairs' safe bits are set; the caller re-seeds them for demotion
  /// and syncs the tuples.
  std::span<const std::uint32_t> raise_clusters(
      std::span<const std::uint32_t> sources, TaskPool* pool);

  /// Algorithm 2: recomputes the shape anchors of every currently-unsafe
  /// pair, written into `info` (statuses there must already match the
  /// bits). The four per-type passes touch disjoint state and anchor slots,
  /// so they fan out over `pool`; within a type the pass is the serial
  /// ascending schedule, so anchors are bit-identical either way. Returns
  /// pairs written.
  std::size_t compute_anchors(SafetyInfo& info, TaskPool* pool);

  const LabelingStats& stats() const noexcept { return stats_; }

  /// The kernel's per-thread scratch arena: reset at the start of every
  /// labeling epoch, so steady-state epochs reuse the retained high-water
  /// block and never touch the general heap.
  static Arena& scratch();

 private:
  bool eligible(NodeId u) const noexcept {
    return (elig_[u >> 6] >> (u & 63)) & 1u;
  }
  void clear_safe_bit(NodeId u, int type_index) noexcept {
    safe_[type_index][u >> 6] &= ~(1ull << (u & 63));
  }
  void set_safe_bit(NodeId u, int type_index) noexcept {
    safe_[type_index][u >> 6] |= 1ull << (u & 63);
  }
  void apply_flip(std::uint32_t k);
  std::size_t parallel_round(TaskPool* pool);

  const UnitDiskGraph& g_;
  const QuadrantZones& zones_;
  Arena& arena_;
  std::size_t n_ = 0;
  std::size_t node_words_ = 0;
  std::size_t key_words_ = 0;
  std::uint64_t* safe_[4] = {nullptr, nullptr, nullptr, nullptr};
  std::uint64_t* elig_ = nullptr;   ///< alive ∧ ¬edge-pinned
  std::uint64_t* pend_ = nullptr;   ///< worklist membership, keyed
  /// FIFO worklist as a fixed 4n ring: the pend bits cap the queue at one
  /// entry per (node, type), so the ring never overflows or regrows.
  std::uint32_t* fifo_ = nullptr;
  std::size_t fifo_cap_ = 0;
  std::size_t fifo_head_ = 0;
  std::size_t fifo_count_ = 0;
  ArenaVector<std::uint32_t> round_;       ///< parallel-round frontier
  std::uint8_t* round_state_ = nullptr;    ///< per-frontier-slot outcome
  ArenaVector<std::uint32_t> flips_;
  ArenaVector<std::uint32_t> raised_;
  std::uint64_t* mark_ = nullptr;  ///< keyed visited bits (raise / clusters)
  LabelingStats stats_;
};

}  // namespace spr
