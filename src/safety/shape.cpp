#include "safety/shape.h"

namespace spr {

Vec2 UnsafeAreaEstimate::far_corner() const noexcept {
  Vec2 s = quadrant_signs(type);
  return {s.x > 0.0 ? rect.hi().x : rect.lo().x,
          s.y > 0.0 ? rect.hi().y : rect.lo().y};
}

std::optional<UnsafeAreaEstimate> estimate_for(const UnitDiskGraph& g,
                                               const SafetyInfo& info,
                                               NodeId v, ZoneType t) {
  const SafetyTuple& tuple = info.tuple(v);
  if (tuple.is_safe(t)) return std::nullopt;
  const ShapeAnchors& a = tuple.anchors_for(t);
  if (!a.valid()) return std::nullopt;
  UnsafeAreaEstimate e;
  e.owner = v;
  e.type = t;
  e.origin = g.position(v);
  e.rect = estimated_area(e.origin, a);
  return e;
}

std::vector<UnsafeAreaEstimate> visible_estimates(const UnitDiskGraph& g,
                                                  const SafetyInfo& info,
                                                  NodeId u) {
  std::vector<UnsafeAreaEstimate> out;
  auto append_for = [&](NodeId v) {
    for (ZoneType t : kAllZoneTypes) {
      if (auto e = estimate_for(g, info, v, t)) out.push_back(*e);
    }
  };
  append_for(u);
  for (NodeId v : g.neighbors(u)) append_for(v);
  return out;
}

std::optional<Rect> covering_rect(const std::vector<UnsafeAreaEstimate>& estimates,
                                  double margin) {
  if (estimates.empty()) return std::nullopt;
  Rect box = estimates.front().rect;
  for (const auto& e : estimates) box = box.united(e.rect);
  return box.inflated(margin);
}

}  // namespace spr
