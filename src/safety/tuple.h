#pragma once

/// \file tuple.h
/// Per-node safety state: the 4-type safe/unsafe tuple S(u) of Definition 1
/// plus, for each unsafe type, the shape anchors u(1)/u(2) and the estimated
/// unsafe-area rectangle E_i(u) of Algorithm 2.

#include <array>
#include <iosfwd>
#include <string>

#include "geometry/quadrant.h"
#include "geometry/rect.h"
#include "geometry/vec2.h"
#include "graph/node.h"

namespace spr {

/// Shape anchors of one unsafe type at one node: the farthest nodes u(1) and
/// u(2) reachable along the first / last greedy forwarding paths of the
/// greedy region G_i(u).
struct ShapeAnchors {
  NodeId first = kInvalidNode;   ///< u(1): id of the far node on the first path
  NodeId last = kInvalidNode;    ///< u(2): id of the far node on the last path
  Vec2 first_pos{};              ///< L(u(1))
  Vec2 last_pos{};               ///< L(u(2))

  bool valid() const noexcept { return first != kInvalidNode; }
  constexpr bool operator==(const ShapeAnchors&) const noexcept = default;
};

/// The full safety state of one node.
struct SafetyTuple {
  /// S_i(u): true = safe ("1"), false = unsafe ("0"); index via zone_index.
  std::array<bool, 4> safe = {true, true, true, true};
  /// Anchors per type; only meaningful where safe[i] == false.
  std::array<ShapeAnchors, 4> anchors{};

  bool is_safe(ZoneType t) const noexcept { return safe[static_cast<size_t>(zone_index(t))]; }
  void set_safe(ZoneType t, bool value) noexcept {
    safe[static_cast<size_t>(zone_index(t))] = value;
  }
  const ShapeAnchors& anchors_for(ZoneType t) const noexcept {
    return anchors[static_cast<size_t>(zone_index(t))];
  }
  ShapeAnchors& anchors_for(ZoneType t) noexcept {
    return anchors[static_cast<size_t>(zone_index(t))];
  }

  /// True when safe in at least one type (a candidate for backup paths).
  bool any_safe() const noexcept {
    return safe[0] || safe[1] || safe[2] || safe[3];
  }

  /// True when the tuple is (0,0,0,0): the node may indicate disconnection
  /// (paper Section 4, perimeter-routing phase precondition).
  bool all_unsafe() const noexcept { return !any_safe(); }

  /// "(1,0,1,1)"-style rendering as in the paper's figures.
  std::string to_string() const;

  constexpr bool operator==(const SafetyTuple&) const noexcept = default;
};

/// Estimated unsafe-area rectangle E_i(u) = bounding box of
/// {L(u), L(u(1)), L(u(2))}. Requires anchors.valid().
Rect estimated_area(Vec2 u, const ShapeAnchors& anchors) noexcept;

std::ostream& operator<<(std::ostream& os, const SafetyTuple& t);

}  // namespace spr
