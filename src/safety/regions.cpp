#include "safety/regions.h"

#include "geometry/quadrant.h"

namespace spr {

double diagonal_side(const UnsafeAreaEstimate& e, Vec2 p) noexcept {
  Vec2 diag = e.far_corner() - e.origin;
  if (diag.norm_sq() < 1e-18) diag = quadrant_diagonal(e.type);
  return diag.cross(p - e.origin);
}

RegionClass classify_region(const UnsafeAreaEstimate& e, Vec2 d, Vec2 p) noexcept {
  if (!in_quadrant(e.origin, p, e.type)) return RegionClass::kOutsideQuadrant;
  if (!in_quadrant(e.origin, d, e.type)) return RegionClass::kCritical;
  double side_d = diagonal_side(e, d);
  if (side_d == 0.0) return RegionClass::kCritical;
  double side_p = diagonal_side(e, p);
  if (side_p == 0.0) return RegionClass::kCritical;
  return (side_d > 0.0) == (side_p > 0.0) ? RegionClass::kCritical
                                          : RegionClass::kForbidden;
}

bool in_forbidden_region(const UnsafeAreaEstimate& e, Vec2 d, Vec2 p) noexcept {
  return classify_region(e, d, p) == RegionClass::kForbidden;
}

Hand choose_hand(const UnsafeAreaEstimate& e, Vec2 d) noexcept {
  return diagonal_side(e, d) >= 0.0 ? Hand::kRight : Hand::kLeft;
}

}  // namespace spr
