#pragma once

/// \file labeling.h
/// Centralized (reference) construction of the safety information model:
/// Definition 1's labeling fixpoint and Algorithm 2's shape anchors. The
/// distributed construction (safety/distributed.h) must converge to exactly
/// this result; tests enforce that.

#include <vector>

#include "deploy/interest_area.h"
#include "graph/unit_disk.h"
#include "safety/flat_kernel.h"
#include "safety/tuple.h"

namespace spr {

class TaskPool;

/// The safety information of a whole network.
class SafetyInfo {
 public:
  SafetyInfo() = default;
  explicit SafetyInfo(std::vector<SafetyTuple> tuples) : tuples_(std::move(tuples)) {}

  const SafetyTuple& tuple(NodeId u) const noexcept { return tuples_[u]; }
  SafetyTuple& tuple(NodeId u) noexcept { return tuples_[u]; }
  std::size_t size() const noexcept { return tuples_.size(); }

  bool is_safe(NodeId u, ZoneType t) const noexcept { return tuples_[u].is_safe(t); }

  /// Count of nodes unsafe in at least one type.
  std::size_t unsafe_node_count() const noexcept;

  bool operator==(const SafetyInfo&) const noexcept = default;

 private:
  std::vector<SafetyTuple> tuples_;
};

/// Runs Definition 1 to its unique fixpoint (worklist algorithm; the flips
/// are monotone 1->0, so any fair order yields the same result), pinning
/// edge nodes of `area` at (1,1,1,1), then computes the anchors u(1)/u(2)
/// per Algorithm 2 for every unsafe (node, type).
///
/// Runs on the flat kernel (safety/flat_kernel.h): the graph's cached
/// quadrant CSR, packed status bits and arena scratch. With a `build_pool`
/// the initialization round, large demotion frontiers and the anchor pass
/// fan out; every merge is id-ordered, so the result is bit-identical —
/// statuses and anchors — for every thread count and to
/// `compute_safety_scalar` (tests enforce both). Callers running *on* a
/// pool worker must pass nullptr (see UnitDiskGraph). `stats`, when
/// non-null, receives the kernel's work counters.
SafetyInfo compute_safety(const UnitDiskGraph& g, const InterestArea& area,
                          TaskPool* build_pool = nullptr,
                          LabelingStats* stats = nullptr);

/// The scalar reference path: per-node SafetyTuple records, geometry tests
/// in every inner loop, recursive anchor resolution — the shape the flat
/// kernel is benchmarked against and the oracle its bit-identity tests
/// compare to. Always serial.
SafetyInfo compute_safety_scalar(const UnitDiskGraph& g,
                                 const InterestArea& area,
                                 LabelingStats* stats = nullptr);

/// As above but evaluates the fixpoint in synchronous rounds (the paper's
/// Fig. 3 narration). Exists to test order-independence of the fixpoint.
SafetyInfo compute_safety_round_based(const UnitDiskGraph& g,
                                      const InterestArea& area);

/// Convenience: one node's connected unsafe area of type `t` (the connected
/// component of type-t unsafe nodes containing `u`, via UDG edges).
std::vector<NodeId> unsafe_area_members(const UnitDiskGraph& g,
                                        const SafetyInfo& info, NodeId u,
                                        ZoneType t);

/// Recomputes the shape anchors u(1)/u(2) for every unsafe (node, type) of
/// `info` from its current statuses (Algorithm 2 step 3). Used by the
/// incremental updater after statuses changed; `compute_safety` calls the
/// same code internally. Runs on the flat kernel; with a `pool` the
/// per-cluster resolutions fan out (bit-identical results). Returns the
/// number of (node,type) anchor sets written.
std::size_t recompute_all_anchors(const UnitDiskGraph& g, SafetyInfo& info,
                                  TaskPool* pool = nullptr);

}  // namespace spr
