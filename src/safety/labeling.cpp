#include "safety/labeling.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <deque>

#include "safety/zone_scan.h"
#include "util/arena.h"
#include "util/task_pool.h"

namespace spr {

std::size_t SafetyInfo::unsafe_node_count() const noexcept {
  std::size_t count = 0;
  for (const auto& t : tuples_) {
    if (!t.safe[0] || !t.safe[1] || !t.safe[2] || !t.safe[3]) ++count;
  }
  return count;
}

namespace {

/// True when Definition 1 forces S_t(u) to unsafe given current labels:
/// every neighbor inside Q_t(u) has S_t = 0 (vacuously true when none).
/// Scalar form — a geometry test per neighbor visit.
bool must_flip(const UnitDiskGraph& g, const std::vector<SafetyTuple>& tuples,
               NodeId u, ZoneType t) {
  Vec2 pu = g.position(u);
  for (NodeId v : g.neighbors(u)) {
    if (!in_quadrant(pu, g.position(v), t)) continue;
    if (tuples[v].is_safe(t)) return false;
  }
  return true;
}

/// Fills the anchors of every unsafe (node, type) pair by the memoized
/// first/last-path recursion of Algorithm 2. Returns the number of anchor
/// sets written. Scalar form; the flat kernel's explicit-stack pass must
/// produce identical anchors (tests enforce it).
std::size_t compute_anchors(const UnitDiskGraph& g,
                            std::vector<SafetyTuple>& tuples) {
  const std::size_t n = g.size();
  for (ZoneType t : kAllZoneTypes) {
    enum class State : unsigned char { kUnvisited, kVisiting, kDone };
    std::vector<State> state(n, State::kUnvisited);

    // Iterative DFS resolving anchor.first via the first-hit chain and
    // anchor.last via the last-hit chain. Self-anchoring breaks the
    // (measure-impossible, but defensively handled) cycles.
    auto resolve = [&](auto&& self, NodeId u) -> void {
      if (state[u] == State::kDone) return;
      ShapeAnchors& a = tuples[u].anchors_for(t);
      if (state[u] == State::kVisiting) {
        // Cycle guard: anchor at self.
        a.first = a.last = u;
        a.first_pos = a.last_pos = g.position(u);
        state[u] = State::kDone;
        return;
      }
      state[u] = State::kVisiting;
      Vec2 pu = g.position(u);
      // Selection through the shared FirstLastScan (safety/zone_scan.h) —
      // the same winners as the flat kernel and the distributed protocol,
      // by construction. The membership test stays scalar geometry.
      FirstLastScan scan(pu, t);
      for (NodeId v : g.neighbors(u)) {
        Vec2 pv = g.position(v);
        if (!in_quadrant(pu, pv, t)) continue;
        if (tuples[v].is_safe(t)) continue;  // only type-t unsafe chains
        scan.consider(v, pv);
      }
      if (scan.empty()) {
        a.first = a.last = u;
        a.first_pos = a.last_pos = g.position(u);
      } else {
        const NodeId v_first = scan.first();
        const NodeId v_last = scan.last();
        self(self, v_first);
        self(self, v_last);
        a.first = tuples[v_first].anchors_for(t).first;
        a.first_pos = tuples[v_first].anchors_for(t).first_pos;
        a.last = tuples[v_last].anchors_for(t).last;
        a.last_pos = tuples[v_last].anchors_for(t).last_pos;
      }
      state[u] = State::kDone;
    };

    for (NodeId u = 0; u < n; ++u) {
      if (!tuples[u].is_safe(t)) resolve(resolve, u);
    }
  }
  std::size_t written = 0;
  for (const auto& tuple : tuples) {
    for (ZoneType t : kAllZoneTypes) {
      if (!tuple.is_safe(t)) ++written;
    }
  }
  return written;
}

}  // namespace

std::size_t recompute_all_anchors(const UnitDiskGraph& g, SafetyInfo& info,
                                  TaskPool* pool) {
  g.zones(pool);
  Arena& arena = FlatLabeler::scratch();
  arena.reset();
  FlatLabeler labeler(g, nullptr, arena);
  labeler.start_from(info);
  return labeler.compute_anchors(info, pool);
}

SafetyInfo compute_safety(const UnitDiskGraph& g, const InterestArea& area,
                          TaskPool* build_pool, LabelingStats* stats) {
  g.zones(build_pool);  // the epoch's quadrant view, built once (parallel ok)
  Arena& arena = FlatLabeler::scratch();
  arena.reset();
  FlatLabeler labeler(g, &area, arena);
  labeler.start_all_safe();
  labeler.initial_round(build_pool);
  labeler.drain(build_pool);

  // Back to the tuple form only at the boundary: default tuples are all
  // safe with cleared anchors, so replaying the flip list lands on the
  // fixpoint statuses.
  std::vector<SafetyTuple> tuples(g.size());
  for (const std::uint32_t k : labeler.flipped()) {
    tuples[FlatLabeler::key_node(k)].set_safe(
        kAllZoneTypes[FlatLabeler::key_type(k)], false);
  }
  SafetyInfo info(std::move(tuples));
  labeler.compute_anchors(info, build_pool);
  if (stats != nullptr) *stats = labeler.stats();
  return info;
}

SafetyInfo compute_safety_scalar(const UnitDiskGraph& g,
                                 const InterestArea& area,
                                 LabelingStats* stats) {
  const std::size_t n = g.size();
  std::vector<SafetyTuple> tuples(n);
  LabelingStats local;

  // Initialization round against the all-safe labeling: S_t(u) can only
  // flip when Q_t(u) holds no neighbor at all (must_flip is vacuously
  // true).
  std::vector<std::array<bool, 4>> initial_flip(
      n, {false, false, false, false});
  for (NodeId u = 0; u < n; ++u) {
    if (!g.alive(u) || area.is_edge_node(u)) continue;  // pinned / dead
    for (ZoneType t : kAllZoneTypes) {
      if (must_flip(g, tuples, u, t)) {
        initial_flip[u][static_cast<size_t>(zone_index(t))] = true;
      }
    }
  }

  // Worklist over (node, type) pairs, seeded by the initial flips' fan-out.
  // Monotone flips guarantee a unique fixpoint regardless of processing
  // order.
  std::deque<std::pair<NodeId, ZoneType>> worklist;
  std::vector<std::array<bool, 4>> queued(n, {false, false, false, false});
  auto enqueue = [&](NodeId u, ZoneType t) {
    auto& flag = queued[u][static_cast<size_t>(zone_index(t))];
    if (!flag) {
      flag = true;
      worklist.emplace_back(u, t);
      ++local.pushes;
    }
  };
  for (NodeId u = 0; u < n; ++u) {
    for (ZoneType t : kAllZoneTypes) {
      if (!initial_flip[u][static_cast<size_t>(zone_index(t))]) continue;
      tuples[u].set_safe(t, false);
      ++local.init_flips;
      for (NodeId w : g.neighbors(u)) {
        if (in_quadrant(g.position(w), g.position(u), t)) enqueue(w, t);
      }
    }
  }

  while (!worklist.empty()) {
    auto [u, t] = worklist.front();
    worklist.pop_front();
    queued[u][static_cast<size_t>(zone_index(t))] = false;
    if (!g.alive(u)) continue;
    if (area.is_edge_node(u)) continue;  // pinned at (1,1,1,1)
    if (!tuples[u].is_safe(t)) continue;
    ++local.reevaluations;
    if (!must_flip(g, tuples, u, t)) continue;
    tuples[u].set_safe(t, false);
    ++local.flips;
    // u's flip can only affect neighbors w that see u inside Q_t(w).
    for (NodeId w : g.neighbors(u)) {
      if (in_quadrant(g.position(w), g.position(u), t)) enqueue(w, t);
    }
  }

  compute_anchors(g, tuples);
  if (stats != nullptr) *stats = local;
  return SafetyInfo(std::move(tuples));
}

SafetyInfo compute_safety_round_based(const UnitDiskGraph& g,
                                      const InterestArea& area) {
  const std::size_t n = g.size();
  std::vector<SafetyTuple> tuples(n);
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<std::pair<NodeId, ZoneType>> flips;
    for (NodeId u = 0; u < n; ++u) {
      if (!g.alive(u) || area.is_edge_node(u)) continue;
      for (ZoneType t : kAllZoneTypes) {
        if (tuples[u].is_safe(t) && must_flip(g, tuples, u, t)) {
          flips.emplace_back(u, t);
        }
      }
    }
    for (auto [u, t] : flips) {
      tuples[u].set_safe(t, false);
      changed = true;
    }
  }
  compute_anchors(g, tuples);
  return SafetyInfo(std::move(tuples));
}

std::vector<NodeId> unsafe_area_members(const UnitDiskGraph& g,
                                        const SafetyInfo& info, NodeId u,
                                        ZoneType t) {
  std::vector<NodeId> out;
  if (info.is_safe(u, t)) return out;
  // BFS scratch (seen bits + frontier) lives in the kernel's per-thread
  // arena; only the returned component itself touches the heap.
  Arena& arena = FlatLabeler::scratch();
  arena.reset();
  const std::size_t words = (g.size() + 63) / 64;
  auto* seen = static_cast<std::uint64_t*>(
      arena.allocate(words * sizeof(std::uint64_t), alignof(std::uint64_t)));
  std::memset(seen, 0, words * sizeof(std::uint64_t));
  ArenaVector<NodeId> frontier{ArenaAllocator<NodeId>(arena)};
  frontier.reserve(g.size());
  seen[u >> 6] |= 1ull << (u & 63);
  frontier.push_back(u);
  for (std::size_t head = 0; head < frontier.size(); ++head) {
    NodeId w = frontier[head];
    out.push_back(w);
    for (NodeId v : g.neighbors(w)) {
      if (((seen[v >> 6] >> (v & 63)) & 1u) == 0 && !info.is_safe(v, t)) {
        seen[v >> 6] |= 1ull << (v & 63);
        frontier.push_back(v);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace spr
