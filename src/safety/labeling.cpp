#include "safety/labeling.h"

#include <algorithm>
#include <array>
#include <deque>
#include <queue>

#include "geometry/angle.h"
#include "util/task_pool.h"

namespace spr {

std::size_t SafetyInfo::unsafe_node_count() const noexcept {
  std::size_t count = 0;
  for (const auto& t : tuples_) {
    if (!t.safe[0] || !t.safe[1] || !t.safe[2] || !t.safe[3]) ++count;
  }
  return count;
}

namespace {

/// True when Definition 1 forces S_t(u) to unsafe given current labels:
/// every neighbor inside Q_t(u) has S_t = 0 (vacuously true when none).
bool must_flip(const UnitDiskGraph& g, const std::vector<SafetyTuple>& tuples,
               NodeId u, ZoneType t) {
  Vec2 pu = g.position(u);
  for (NodeId v : g.neighbors(u)) {
    if (!in_quadrant(pu, g.position(v), t)) continue;
    if (tuples[v].is_safe(t)) return false;
  }
  return true;
}

/// Fills the anchors of every unsafe (node, type) pair by the memoized
/// first/last-path recursion of Algorithm 2. Returns the number of anchor
/// sets written.
std::size_t compute_anchors(const UnitDiskGraph& g,
                            std::vector<SafetyTuple>& tuples) {
  const std::size_t n = g.size();
  for (ZoneType t : kAllZoneTypes) {
    enum class State : unsigned char { kUnvisited, kVisiting, kDone };
    std::vector<State> state(n, State::kUnvisited);
    const double start_bearing = quadrant_start_bearing(t);

    // Iterative DFS resolving anchor.first via the first-hit chain and
    // anchor.last via the last-hit chain. Self-anchoring breaks the
    // (measure-impossible, but defensively handled) cycles.
    auto resolve = [&](auto&& self, NodeId u) -> void {
      if (state[u] == State::kDone) return;
      ShapeAnchors& a = tuples[u].anchors_for(t);
      if (state[u] == State::kVisiting) {
        // Cycle guard: anchor at self.
        a.first = a.last = u;
        a.first_pos = a.last_pos = g.position(u);
        state[u] = State::kDone;
        return;
      }
      state[u] = State::kVisiting;
      Vec2 pu = g.position(u);
      CcwScan scan(pu, start_bearing);
      NodeId v_first = kInvalidNode, v_last = kInvalidNode;
      double best_first = 0.0, best_last = 0.0;
      for (NodeId v : g.neighbors(u)) {
        Vec2 pv = g.position(v);
        if (!in_quadrant(pu, pv, t)) continue;
        if (tuples[v].is_safe(t)) continue;  // only type-t unsafe chains
        double sweep = scan.sweep_to(pv);
        if (v_first == kInvalidNode || sweep < best_first ||
            (sweep == best_first && distance_sq(pu, pv) <
                 distance_sq(pu, g.position(v_first)))) {
          v_first = v;
          best_first = sweep;
        }
        if (v_last == kInvalidNode || sweep > best_last ||
            (sweep == best_last && distance_sq(pu, pv) <
                 distance_sq(pu, g.position(v_last)))) {
          v_last = v;
          best_last = sweep;
        }
      }
      if (v_first == kInvalidNode) {
        a.first = a.last = u;
        a.first_pos = a.last_pos = g.position(u);
      } else {
        self(self, v_first);
        self(self, v_last);
        a.first = tuples[v_first].anchors_for(t).first;
        a.first_pos = tuples[v_first].anchors_for(t).first_pos;
        a.last = tuples[v_last].anchors_for(t).last;
        a.last_pos = tuples[v_last].anchors_for(t).last_pos;
      }
      state[u] = State::kDone;
    };

    for (NodeId u = 0; u < n; ++u) {
      if (!tuples[u].is_safe(t)) resolve(resolve, u);
    }
  }
  std::size_t written = 0;
  for (const auto& tuple : tuples) {
    for (ZoneType t : kAllZoneTypes) {
      if (!tuple.is_safe(t)) ++written;
    }
  }
  return written;
}

}  // namespace

std::size_t recompute_all_anchors(const UnitDiskGraph& g, SafetyInfo& info) {
  std::vector<SafetyTuple> tuples(info.size());
  for (NodeId u = 0; u < info.size(); ++u) tuples[u] = info.tuple(u);
  std::size_t written = compute_anchors(g, tuples);
  for (NodeId u = 0; u < info.size(); ++u) info.tuple(u) = tuples[u];
  return written;
}

SafetyInfo compute_safety(const UnitDiskGraph& g, const InterestArea& area,
                          TaskPool* build_pool) {
  const std::size_t n = g.size();
  std::vector<SafetyTuple> tuples(n);

  // Initialization round against the all-safe labeling: S_t(u) can only
  // flip when Q_t(u) holds no neighbor at all (must_flip is vacuously
  // true). Each (node, type) is independent and only reads the graph, so
  // this round fans out over the pool; the flip set is data-determined and
  // applied in node-id order below, keeping the fixpoint — which is unique
  // regardless of evaluation order — identical for every thread count.
  std::vector<std::array<bool, 4>> initial_flip(
      n, {false, false, false, false});
  parallel_for_blocked(
      build_pool, n, 256, [&](std::size_t range_begin, std::size_t range_end) {
        for (NodeId u = static_cast<NodeId>(range_begin);
             u < static_cast<NodeId>(range_end); ++u) {
          if (!g.alive(u) || area.is_edge_node(u)) continue;  // pinned / dead
          for (ZoneType t : kAllZoneTypes) {
            if (must_flip(g, tuples, u, t)) {
              initial_flip[u][static_cast<size_t>(zone_index(t))] = true;
            }
          }
        }
      });

  // Worklist over (node, type) pairs, seeded by the initial flips' fan-out.
  // Monotone flips guarantee a unique fixpoint regardless of processing
  // order.
  std::deque<std::pair<NodeId, ZoneType>> worklist;
  std::vector<std::array<bool, 4>> queued(n, {false, false, false, false});
  auto enqueue = [&](NodeId u, ZoneType t) {
    auto& flag = queued[u][static_cast<size_t>(zone_index(t))];
    if (!flag) {
      flag = true;
      worklist.emplace_back(u, t);
    }
  };
  for (NodeId u = 0; u < n; ++u) {
    for (ZoneType t : kAllZoneTypes) {
      if (!initial_flip[u][static_cast<size_t>(zone_index(t))]) continue;
      tuples[u].set_safe(t, false);
      for (NodeId w : g.neighbors(u)) {
        if (in_quadrant(g.position(w), g.position(u), t)) enqueue(w, t);
      }
    }
  }

  while (!worklist.empty()) {
    auto [u, t] = worklist.front();
    worklist.pop_front();
    queued[u][static_cast<size_t>(zone_index(t))] = false;
    if (!g.alive(u)) continue;
    if (area.is_edge_node(u)) continue;  // pinned at (1,1,1,1)
    if (!tuples[u].is_safe(t)) continue;
    if (!must_flip(g, tuples, u, t)) continue;
    tuples[u].set_safe(t, false);
    // u's flip can only affect neighbors w that see u inside Q_t(w).
    for (NodeId w : g.neighbors(u)) {
      if (in_quadrant(g.position(w), g.position(u), t)) enqueue(w, t);
    }
  }

  compute_anchors(g, tuples);
  return SafetyInfo(std::move(tuples));
}

SafetyInfo compute_safety_round_based(const UnitDiskGraph& g,
                                      const InterestArea& area) {
  const std::size_t n = g.size();
  std::vector<SafetyTuple> tuples(n);
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<std::pair<NodeId, ZoneType>> flips;
    for (NodeId u = 0; u < n; ++u) {
      if (!g.alive(u) || area.is_edge_node(u)) continue;
      for (ZoneType t : kAllZoneTypes) {
        if (tuples[u].is_safe(t) && must_flip(g, tuples, u, t)) {
          flips.emplace_back(u, t);
        }
      }
    }
    for (auto [u, t] : flips) {
      tuples[u].set_safe(t, false);
      changed = true;
    }
  }
  compute_anchors(g, tuples);
  return SafetyInfo(std::move(tuples));
}

std::vector<NodeId> unsafe_area_members(const UnitDiskGraph& g,
                                        const SafetyInfo& info, NodeId u,
                                        ZoneType t) {
  std::vector<NodeId> out;
  if (info.is_safe(u, t)) return out;
  std::vector<bool> seen(g.size(), false);
  std::queue<NodeId> frontier;
  seen[u] = true;
  frontier.push(u);
  while (!frontier.empty()) {
    NodeId w = frontier.front();
    frontier.pop();
    out.push_back(w);
    for (NodeId v : g.neighbors(w)) {
      if (!seen[v] && !info.is_safe(v, t)) {
        seen[v] = true;
        frontier.push(v);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace spr
