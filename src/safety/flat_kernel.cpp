#include "safety/flat_kernel.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstring>
#include <vector>

#include "safety/labeling.h"
#include "safety/zone_scan.h"
#include "util/check.h"
#include "util/task_pool.h"

namespace spr {

namespace {

/// Frontier size above which a demotion step runs as a synchronous parallel
/// round instead of a serial pop; below it, task dispatch costs more than
/// the evaluations.
constexpr std::size_t kParallelFrontier = 2048;
/// Source count above which promotion flood fills fan out.
constexpr std::size_t kParallelSources = 8;

std::uint64_t* alloc_words(Arena& arena, std::size_t words, bool zero) {
  auto* p = static_cast<std::uint64_t*>(
      arena.allocate(words * sizeof(std::uint64_t), alignof(std::uint64_t)));
  if (zero && words > 0) std::memset(p, 0, words * sizeof(std::uint64_t));
  return p;
}

}  // namespace

Arena& FlatLabeler::scratch() {
  // One retained block per thread: the first labeling epoch sizes it, every
  // later epoch on this thread bump-allocates out of the same memory.
  static thread_local Arena arena(1 << 20);
  return arena;
}

FlatLabeler::FlatLabeler(const UnitDiskGraph& g, const InterestArea* area,
                         Arena& arena)
    : g_(g),
      zones_(g.zones()),
      arena_(arena),
      n_(g.size()),
      node_words_((g.size() + 63) / 64),
      key_words_((4 * g.size() + 63) / 64),
      round_(ArenaAllocator<std::uint32_t>(arena)),
      flips_(ArenaAllocator<std::uint32_t>(arena)),
      raised_(ArenaAllocator<std::uint32_t>(arena)) {
  for (int ti = 0; ti < 4; ++ti) {
    safe_[ti] = alloc_words(arena, node_words_, false);
  }
  elig_ = alloc_words(arena, node_words_, true);
  pend_ = alloc_words(arena, key_words_, true);
  for (NodeId u = 0; u < n_; ++u) {
    if (g.alive(u) && (area == nullptr || !area->is_edge_node(u))) {
      elig_[u >> 6] |= 1ull << (u & 63);
    }
  }
  // Exact worst-case sizes: nothing here ever regrows, so the arena never
  // strands a stale block mid-epoch.
  fifo_cap_ = 4 * n_;
  fifo_ = static_cast<std::uint32_t*>(
      arena.allocate(fifo_cap_ * sizeof(std::uint32_t), alignof(std::uint32_t)));
  flips_.reserve(4 * n_);
}

void FlatLabeler::start_all_safe() {
  for (int ti = 0; ti < 4; ++ti) {
    std::memset(safe_[ti], 0xff, node_words_ * sizeof(std::uint64_t));
  }
}

void FlatLabeler::start_from(const SafetyInfo& info) {
  for (int ti = 0; ti < 4; ++ti) {
    std::memset(safe_[ti], 0, node_words_ * sizeof(std::uint64_t));
  }
  for (NodeId u = 0; u < n_; ++u) {
    const SafetyTuple& tuple = info.tuple(u);
    for (int ti = 0; ti < 4; ++ti) {
      if (tuple.is_safe(kAllZoneTypes[ti])) set_safe_bit(u, ti);
    }
  }
}

bool FlatLabeler::must_flip(NodeId u, int ti) const noexcept {
  for (NodeId v : zones_.members(u, kAllZoneTypes[ti])) {
    if (safe_bit(v, ti)) return false;
  }
  return true;
}

void FlatLabeler::apply_flip(std::uint32_t k) {
  const NodeId u = key_node(k);
  const int ti = key_type(k);
  // Demotions are monotone: a pair flips 1 -> 0 exactly once.
  SPR_DCHECK(safe_bit(u, ti), "double flip of node ", u, " type ", ti);
  clear_safe_bit(u, ti);
  flips_.push_back(k);
  // u's flip can only affect the w that see u inside Q_t(w). Skip the ones
  // that can never flip (pinned/dead) or already have (monotone).
  for (NodeId w : zones_.observers(u, kAllZoneTypes[ti])) {
    if (!safe_bit(w, ti) || !eligible(w)) continue;
    enqueue(w, ti);
  }
}

bool FlatLabeler::mirror_demotion(NodeId u, int ti) {
  if (!safe_bit(u, ti)) return false;
  clear_safe_bit(u, ti);
  // Same fan-out as apply_flip, minus the flip record: the owning shard
  // already accounted for the demotion; here only the local observers'
  // re-evaluations matter.
  for (NodeId w : zones_.observers(u, kAllZoneTypes[ti])) {
    if (!safe_bit(w, ti) || !eligible(w)) continue;
    enqueue(w, ti);
  }
  return true;
}

bool FlatLabeler::enqueue(NodeId u, int ti) {
  SPR_DCHECK(u < n_, "enqueue of out-of-range node ", u, " (n=", n_, ")");
  const std::uint32_t k = key(u, ti);
  std::uint64_t& word = pend_[k >> 6];
  const std::uint64_t bit = 1ull << (k & 63);
  if ((word & bit) != 0) return false;
  word |= bit;
  // The pend bits cap the ring at one slot per (node, type), so occupancy
  // can reach fifo_cap_ only through a pend/count mismatch.
  SPR_DCHECK(fifo_count_ < fifo_cap_, "FIFO ring overflow: count=",
             fifo_count_, " cap=", fifo_cap_, " at key ", k);
  std::size_t tail = fifo_head_ + fifo_count_;
  if (tail >= fifo_cap_) tail -= fifo_cap_;
  fifo_[tail] = k;
  ++fifo_count_;
  ++stats_.pushes;
  return true;
}

void FlatLabeler::initial_round(TaskPool* pool) {
  // The vacuous flips are a pure function of the topology — Q_t(u) holds no
  // neighbor at all — so evaluation order is irrelevant; the scan fans out
  // and the flips apply in key order below. The grain keeps each block's
  // key range word-aligned (grain * 4 divisible by 64), so blocks never
  // share an output word.
  std::uint64_t* init = alloc_words(arena_, key_words_, true);
  parallel_for_blocked(
      pool, n_, 1024, [&](std::size_t range_begin, std::size_t range_end) {
        for (NodeId u = static_cast<NodeId>(range_begin);
             u < static_cast<NodeId>(range_end); ++u) {
          if (!eligible(u)) continue;
          for (int ti = 0; ti < 4; ++ti) {
            if (zones_.members(u, kAllZoneTypes[ti]).empty()) {
              const std::uint32_t k = key(u, ti);
              init[k >> 6] |= 1ull << (k & 63);
            }
          }
        }
      });
  for (std::size_t w = 0; w < key_words_; ++w) {
    std::uint64_t bits = init[w];
    while (bits != 0) {
      const int b = std::countr_zero(bits);
      bits &= bits - 1;
      ++stats_.init_flips;
      apply_flip(static_cast<std::uint32_t>(w * 64 + b));
    }
  }
}

std::size_t FlatLabeler::drain(TaskPool* pool) {
  const std::size_t before = flips_.size();
  while (fifo_count_ != 0) {
    if (pool != nullptr && fifo_count_ >= kParallelFrontier) {
      parallel_round(pool);
      continue;
    }
    const std::uint32_t k = fifo_[fifo_head_];
    if (++fifo_head_ >= fifo_cap_) fifo_head_ = 0;
    --fifo_count_;
    // Every ring slot was published with its pend bit set and nothing else
    // clears the bit; a clear bit here means the dedup discipline broke.
    SPR_DCHECK((pend_[k >> 6] >> (k & 63)) & 1u,
               "popped key ", k, " without its pend bit");
    pend_[k >> 6] &= ~(1ull << (k & 63));
    const NodeId u = key_node(k);
    const int ti = key_type(k);
    if (!eligible(u) || !safe_bit(u, ti)) continue;
    ++stats_.reevaluations;
    if (!must_flip(u, ti)) continue;
    apply_flip(k);
    ++stats_.flips;
  }
  return flips_.size() - before;
}

std::size_t FlatLabeler::parallel_round(TaskPool* pool) {
  // Synchronous round: evaluate the whole frontier against the pre-round
  // bits (a pure function, so any partition yields the same outcomes), then
  // apply the flips serially in frontier order. Monotonicity keeps a
  // pre-round must-flip valid after this round's earlier applications. The
  // pend bits of the frontier clear *before* the applications, so an
  // observer that evaluated "no flip" here is re-enqueued by the fan-out of
  // a later flip — no transitively-required flip is ever lost. Outcomes per
  // slot make the stats deterministic for every worker count.
  if (round_state_ == nullptr) {
    round_state_ = static_cast<std::uint8_t*>(arena_.allocate(4 * n_, 1));
  }
  if (round_.capacity() == 0) round_.reserve(4 * n_);
  round_.clear();
  for (std::size_t i = 0, pos = fifo_head_; i < fifo_count_; ++i) {
    round_.push_back(fifo_[pos]);
    if (++pos >= fifo_cap_) pos = 0;
  }
  fifo_head_ = 0;
  fifo_count_ = 0;
  for (const std::uint32_t k : round_) {
    pend_[k >> 6] &= ~(1ull << (k & 63));
  }
  const std::size_t m = round_.size();
  parallel_for_blocked(
      pool, m, 256, [&](std::size_t range_begin, std::size_t range_end) {
        for (std::size_t i = range_begin; i < range_end; ++i) {
          const std::uint32_t k = round_[i];
          const NodeId u = key_node(k);
          const int ti = key_type(k);
          std::uint8_t outcome = 0;  // guard skip
          if (eligible(u) && safe_bit(u, ti)) {
            outcome = must_flip(u, ti) ? 2 : 1;  // flip : re-eval, no flip
          }
          round_state_[i] = outcome;
        }
      });
  std::size_t flipped = 0;
  for (std::size_t i = 0; i < m; ++i) {
    if (round_state_[i] == 0) continue;
    ++stats_.reevaluations;
    if (round_state_[i] != 2) continue;
    apply_flip(round_[i]);
    ++stats_.flips;
    ++flipped;
  }
  return flipped;
}

std::span<const std::uint32_t> FlatLabeler::raise_clusters(
    std::span<const std::uint32_t> sources, TaskPool* pool) {
  raised_.clear();
  if (raised_.capacity() == 0) raised_.reserve(4 * n_);
  if (mark_ == nullptr) mark_ = alloc_words(arena_, key_words_, false);
  std::memset(mark_, 0, key_words_ * sizeof(std::uint64_t));

  // First-claim wins via fetch_or; a flood that loses a claim stops there
  // while the claimer keeps expanding, so the marked set is always the full
  // union of the touched clusters no matter how claims interleave.
  auto claim = [&](std::uint32_t k) {
    std::atomic_ref<std::uint64_t> word(mark_[k >> 6]);
    const std::uint64_t bit = 1ull << (k & 63);
    return (word.fetch_or(bit, std::memory_order_relaxed) & bit) == 0;
  };
  auto flood = [&](std::uint32_t src) {
    const NodeId su = key_node(src);
    const int ti = key_type(src);
    // Dead nodes hold fresh all-safe tuples, so the unsafe guard also
    // filters them.
    if (safe_bit(su, ti)) return;
    if (!claim(src)) return;
    static thread_local std::vector<NodeId> stack;
    stack.clear();
    stack.push_back(su);
    while (!stack.empty()) {
      const NodeId w = stack.back();
      stack.pop_back();
      for (NodeId v : g_.neighbors(w)) {
        if (safe_bit(v, ti)) continue;
        if (claim(key(v, ti))) stack.push_back(v);
      }
    }
  };
  if (pool != nullptr && sources.size() >= kParallelSources) {
    parallel_for_blocked(pool, sources.size(), 1,
                         [&](std::size_t range_begin, std::size_t range_end) {
                           for (std::size_t i = range_begin; i < range_end; ++i)
                             flood(sources[i]);
                         });
  } else {
    for (const std::uint32_t src : sources) flood(src);
  }

  // Collect ascending from the bit words — claim-order invariant — and
  // re-raise the bits.
  for (std::size_t w = 0; w < key_words_; ++w) {
    std::uint64_t bits = mark_[w];
    while (bits != 0) {
      const int b = std::countr_zero(bits);
      bits &= bits - 1;
      const auto k = static_cast<std::uint32_t>(w * 64 + b);
      set_safe_bit(key_node(k), key_type(k));
      raised_.push_back(k);
    }
  }
  return {raised_.data(), raised_.size()};
}

namespace {

/// Explicit-stack frame of the anchor recursion: phase 0 enters a node
/// (scan + push children), phase 1 combines the children's resolved
/// anchors.
struct AnchorFrame {
  NodeId u;
  NodeId v_first;
  NodeId v_last;
  std::uint8_t phase;
};

constexpr std::uint8_t kUnvisited = 0;
constexpr std::uint8_t kVisiting = 1;
constexpr std::uint8_t kDone = 2;

}  // namespace

std::size_t FlatLabeler::compute_anchors(SafetyInfo& info, TaskPool* pool) {
  auto* state = static_cast<std::uint8_t*>(arena_.allocate(4 * n_, 1));
  std::memset(state, 0, 4 * n_);

  // The memoized first/last-path recursion of Algorithm 2 as an explicit-
  // stack DFS, exactly replicating the scalar recursion's call order (push
  // v_last below v_first so the first chain resolves first).
  auto resolve_from = [&](NodeId root, int ti, std::uint8_t* st) {
    const ZoneType t = kAllZoneTypes[ti];
    static thread_local std::vector<AnchorFrame> stack;
    stack.push_back(AnchorFrame{root, 0, 0, 0});
    while (!stack.empty()) {
      AnchorFrame& f = stack.back();
      const NodeId u = f.u;
      ShapeAnchors& a = info.tuple(u).anchors_for(t);
      if (f.phase == 1) {
        // Combine: first via the first-hit chain, last via the last-hit
        // chain. Unconditional, like the recursion after its calls return
        // (a cycle guard may have self-anchored u in between).
        const ShapeAnchors& fa = info.tuple(f.v_first).anchors_for(t);
        const ShapeAnchors& la = info.tuple(f.v_last).anchors_for(t);
        a.first = fa.first;
        a.first_pos = fa.first_pos;
        a.last = la.last;
        a.last_pos = la.last_pos;
        st[u] = kDone;
        stack.pop_back();
        continue;
      }
      if (st[u] == kDone) {
        stack.pop_back();
        continue;
      }
      if (st[u] == kVisiting) {
        // Cycle guard: anchor at self (measure-impossible, but defended).
        a.first = a.last = u;
        a.first_pos = a.last_pos = g_.position(u);
        st[u] = kDone;
        stack.pop_back();
        continue;
      }
      st[u] = kVisiting;
      FirstLastScan scan(g_.position(u), t);
      for (NodeId v : zones_.members(u, t)) {
        if (!safe_bit(v, ti)) scan.consider(v, g_.position(v));
      }
      if (scan.empty()) {
        a.first = a.last = u;
        a.first_pos = a.last_pos = g_.position(u);
        st[u] = kDone;
        stack.pop_back();
        continue;
      }
      const NodeId v_first = scan.first();
      const NodeId v_last = scan.last();
      f.v_first = v_first;
      f.v_last = v_last;
      f.phase = 1;
      // (`f` dangles after these pushes.)
      stack.push_back(AnchorFrame{v_last, 0, 0, 0});
      stack.push_back(AnchorFrame{v_first, 0, 0, 0});
    }
  };

  // One global ascending pass per type — the scalar oracle's schedule
  // verbatim — resolving each unsafe pair on first touch. An anchor chain
  // never leaves its type (first/last successors are type-t unsafe quadrant
  // members), so the four passes touch disjoint `st` rows and disjoint
  // anchor slots and fan out freely; within a pass the schedule is serial
  // either way, so the written bytes are identical for every worker count.
  std::size_t written[4] = {0, 0, 0, 0};
  auto run_type = [&](int ti) {
    std::uint8_t* st = state + static_cast<std::size_t>(ti) * n_;
    for (NodeId u = 0; u < n_; ++u) {
      if (safe_bit(u, ti)) continue;
      ++written[ti];
      if (st[u] != kDone) resolve_from(u, ti, st);
    }
  };
  parallel_for_blocked(pool, 4, 1,
                       [&](std::size_t range_begin, std::size_t range_end) {
                         for (std::size_t ti = range_begin; ti < range_end;
                              ++ti) {
                           run_type(static_cast<int>(ti));
                         }
                       });
  return written[0] + written[1] + written[2] + written[3];
}

}  // namespace spr
