#pragma once

/// \file regions.h
/// Critical / forbidden region split (paper Section 4, Fig. 1(b) and
/// Fig. 4(b)): the ray from the estimate's origin v through the far corner
/// (x_{v(1)}, y_{v(2)}) divides Q_i(v) into two parts; the part containing
/// the destination d is the *critical region*, the other the *forbidden
/// region*. SLGF2's superseding "either-hand rule" prefers successors
/// outside the forbidden region.

#include "geometry/vec2.h"
#include "safety/shape.h"

namespace spr {

/// Where a point sits relative to one estimate's split.
enum class RegionClass {
  kCritical,        ///< in Q_i(v), same side of the diagonal as d
  kForbidden,       ///< in Q_i(v), opposite side of the diagonal from d
  kOutsideQuadrant  ///< not in Q_i(v) at all (the split does not apply)
};

/// Signed side of `p` w.r.t. the diagonal ray of `e`: >0 counter-clockwise,
/// <0 clockwise, 0 on the ray. Degenerate estimates (far corner == origin)
/// use the quadrant diagonal as the split direction.
double diagonal_side(const UnsafeAreaEstimate& e, Vec2 p) noexcept;

/// Classifies candidate position `p` given destination `d`. When d itself
/// lies outside Q_i(v) or exactly on the diagonal, no candidate is
/// forbidden (returns kCritical / kOutsideQuadrant only).
RegionClass classify_region(const UnsafeAreaEstimate& e, Vec2 d, Vec2 p) noexcept;

/// True when the superseding rule disqualifies `p`: d is inside the
/// quadrant (critical region defined) and `p` falls on the opposite side.
bool in_forbidden_region(const UnsafeAreaEstimate& e, Vec2 d, Vec2 p) noexcept;

/// Detour hand around an estimated area. The paper's "either-hand rule"
/// picks the hand whose walk stays on the destination's side of the
/// blocking area. Following Algorithm 1's convention, the *right* hand
/// rotates the reference ray counter-clockwise; the *left* hand clockwise.
enum class Hand { kRight, kLeft };

/// Hand on d's side of the estimate's diagonal: counter-clockwise side
/// (positive cross) -> kRight, else kLeft.
Hand choose_hand(const UnsafeAreaEstimate& e, Vec2 d) noexcept;

}  // namespace spr
