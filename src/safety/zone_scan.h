#pragma once

/// \file zone_scan.h
/// The first/last-path successor selection of Algorithm 2, shared between
/// the flat labeling kernel (safety/flat_kernel.h), the scalar oracle
/// (safety/labeling.cpp) and the distributed protocol's per-node tuple
/// recompute (safety/distributed.cpp) so none of the paths can drift: all
/// feed the type-t unsafe quadrant members in ascending id order and read
/// off the same winners.
///
/// Selection rule (paper Fig. 4): rotate a ray counter-clockwise across
/// Q_t(u) from the quadrant's clockwise boundary; the *first* unsafe
/// neighbor hit starts the first path, the *last* one the last path. Ties
/// at the same bearing go to the nearer node; remaining ties keep the
/// earlier (lower-id) candidate, which is why feeding order matters.
///
/// All candidates lie inside one quadrant of the pivot — a 90° sector — so
/// counter-clockwise order between two candidates is exactly the sign of
/// the cross product of their pivot-relative vectors. The comparisons below
/// are therefore exact (a tie means truly collinear rays) and cost no
/// transcendental per candidate, which is what makes the anchor pass cheap
/// at 10^5-node fields.

#include "geometry/quadrant.h"
#include "geometry/vec2.h"
#include "graph/node.h"

namespace spr {

class FirstLastScan {
 public:
  FirstLastScan(Vec2 pivot, ZoneType /*t*/) noexcept : pivot_(pivot) {}

  /// Feeds one candidate; call in ascending id order.
  void consider(NodeId v, Vec2 pv) noexcept {
    if (first_ == kInvalidNode) {
      first_ = last_ = v;
      first_pos_ = last_pos_ = pv;
      return;
    }
    const Vec2 dv = pv - pivot_;
    // dv.cross(df) > 0: the current first is counter-clockwise of v, so v
    // is hit earlier in the sweep.
    const double cf = dv.cross(first_pos_ - pivot_);
    if (cf > 0.0 ||
        (cf == 0.0 &&
         distance_sq(pivot_, pv) < distance_sq(pivot_, first_pos_))) {
      first_ = v;
      first_pos_ = pv;
    }
    const double cl = (last_pos_ - pivot_).cross(dv);
    if (cl > 0.0 ||
        (cl == 0.0 &&
         distance_sq(pivot_, pv) < distance_sq(pivot_, last_pos_))) {
      last_ = v;
      last_pos_ = pv;
    }
  }

  bool empty() const noexcept { return first_ == kInvalidNode; }
  NodeId first() const noexcept { return first_; }
  NodeId last() const noexcept { return last_; }
  Vec2 first_pos() const noexcept { return first_pos_; }
  Vec2 last_pos() const noexcept { return last_pos_; }

 private:
  Vec2 pivot_;
  NodeId first_ = kInvalidNode;
  NodeId last_ = kInvalidNode;
  Vec2 first_pos_{};
  Vec2 last_pos_{};
};

}  // namespace spr
