#pragma once

/// \file incremental.h
/// Incremental maintenance of the safety information under node failures —
/// the dynamic hole causes of the paper's Section 1 (node failures, power
/// exhaustion, jamming, interference).
///
/// Key monotonicity fact: Definition 1's flip condition at u depends only
/// on the *presence of a safe type-t neighbor* in Q_t(u). Removing nodes
/// can remove such support but never create it, so after failures the old
/// fixpoint remains an over-approximation of safety: statuses only move
/// 1 -> 0. Re-running the worklist seeded with just the failed nodes'
/// neighborhoods therefore reaches the exact new fixpoint while touching
/// only the affected region — no global reconstruction (and no global
/// message storm in the distributed analogue).
///
/// Node *motion* changes edges in both directions: removals can only demote
/// (as under failures), while additions can *promote* — a node that gains a
/// safe quadrant supporter may flip 0 -> 1, and that promotion can cascade.
/// `update_safety_after_moves` handles both: promotions are seeded by
/// optimistically re-raising the connected unsafe clusters touched by the
/// move frontier back to safe (only the touched cluster is relabeled — the
/// message-passing cluster-relabeling idea of the parallel Swendsen-Wang
/// algorithms), which restores the over-approximation invariant; the
/// standard demotion worklist then closes over exactly the affected region
/// and lands on the same greatest fixpoint `compute_safety` computes.

#include <vector>

#include "deploy/interest_area.h"
#include "graph/unit_disk.h"
#include "safety/labeling.h"

namespace spr {

/// Statistics of one incremental update.
struct IncrementalStats {
  std::size_t seeds = 0;            ///< (node,type) pairs initially enqueued
  std::size_t reevaluations = 0;    ///< flip-condition evaluations performed
  std::size_t flips = 0;            ///< demotions: statuses that went 1 -> 0
  std::size_t promotions = 0;       ///< statuses that went 0 -> 1 (moves only)
  std::size_t anchor_recomputes = 0;///< nodes whose anchors were rebuilt
  /// Peak scratch-arena bytes of *this* update: the arena is monotonic and
  /// reset when the update starts, so its end-of-update `bytes_allocated()`
  /// is the update's own high water. Deterministic (unlike the arena's
  /// lifetime `high_water()`, which depends on what else ran on the
  /// thread), so reports may carry it byte-stably. Once the retained block
  /// covers it, later identical epochs never touch the general heap.
  std::size_t arena_high_water = 0;
};

/// Updates `info` (computed for the graph *before* the failures) to the
/// exact fixpoint of `degraded`, which must be the same node set with some
/// nodes dead (`UnitDiskGraph::with_failures`). `area` is the interest area
/// of the degraded graph. Returns what the update touched.
///
/// Postcondition: `info == compute_safety(degraded, area)` up to the
/// anchors of unaffected nodes, which are recomputed only where reachable
/// from a change (tests assert full equality of statuses and anchors).
///
/// Runs on the flat kernel (safety/flat_kernel.h): statuses pack into bits,
/// the seed set comes from one spatial-grid disc query per failed node, and
/// all scratch is arena-retained, so steady-state waves stay off the heap.
/// With a `pool` large frontiers and the anchor pass fan out; results are
/// bit-identical for every worker count.
IncrementalStats update_safety_after_failures(const UnitDiskGraph& degraded,
                                              const InterestArea& area,
                                              const std::vector<NodeId>& failed,
                                              SafetyInfo& info,
                                              TaskPool* pool = nullptr);

/// Updates `info` (the fixpoint of `before` / `area_before`) to the exact
/// fixpoint of `after` / `area_after`, where `after` is the same node set
/// with some nodes moved (`UnitDiskGraph::with_moves` — same aliveness,
/// edges added and removed). Bidirectional:
///
///  * every (node, type) whose quadrant gained a member — an added edge, a
///    surviving edge whose relative quadrant flipped, or a node newly
///    pinned as an edge node — is a *promotion source*: its connected
///    type-t unsafe cluster (new-graph edges) is optimistically re-raised
///    to safe, which provably covers every pair the new fixpoint promotes;
///  * every pair that lost a quadrant member, left the edge-node band, or
///    was optimistically raised seeds the standard demotion worklist,
///    which closes downward onto the greatest fixpoint.
///
/// Postcondition: `info == compute_safety(after, area_after)`, statuses and
/// anchors (tests assert full equality at every staged-mobility epoch).
///
/// The delta walk stays scalar (it reads both snapshots' positions), but
/// its bitmaps, the cluster raises, the demotion worklist and the anchor
/// pass all run on the flat kernel with arena-retained scratch — a
/// steady-state repin epoch does no general-heap allocation inside the
/// updater. With a `pool` the cluster raises, large frontiers and the
/// anchor pass fan out; results are bit-identical for every worker count.
IncrementalStats update_safety_after_moves(const UnitDiskGraph& before,
                                           const InterestArea& area_before,
                                           const UnitDiskGraph& after,
                                           const InterestArea& area_after,
                                           SafetyInfo& info,
                                           TaskPool* pool = nullptr);

}  // namespace spr
