#pragma once

/// \file incremental.h
/// Incremental maintenance of the safety information under node failures —
/// the dynamic hole causes of the paper's Section 1 (node failures, power
/// exhaustion, jamming, interference).
///
/// Key monotonicity fact: Definition 1's flip condition at u depends only
/// on the *presence of a safe type-t neighbor* in Q_t(u). Removing nodes
/// can remove such support but never create it, so after failures the old
/// fixpoint remains an over-approximation of safety: statuses only move
/// 1 -> 0. Re-running the worklist seeded with just the failed nodes'
/// neighborhoods therefore reaches the exact new fixpoint while touching
/// only the affected region — no global reconstruction (and no global
/// message storm in the distributed analogue).
///
/// Node *additions* are the opposite direction (safety can only grow) and
/// require recomputation of the greatest fixpoint; `compute_safety` remains
/// the tool for that.

#include <vector>

#include "deploy/interest_area.h"
#include "safety/labeling.h"

namespace spr {

/// Statistics of one incremental update.
struct IncrementalStats {
  std::size_t seeds = 0;            ///< (node,type) pairs initially enqueued
  std::size_t reevaluations = 0;    ///< flip-condition evaluations performed
  std::size_t flips = 0;            ///< statuses that changed 1 -> 0
  std::size_t anchor_recomputes = 0;///< nodes whose anchors were rebuilt
};

/// Updates `info` (computed for the graph *before* the failures) to the
/// exact fixpoint of `degraded`, which must be the same node set with some
/// nodes dead (`UnitDiskGraph::with_failures`). `area` is the interest area
/// of the degraded graph. Returns what the update touched.
///
/// Postcondition: `info == compute_safety(degraded, area)` up to the
/// anchors of unaffected nodes, which are recomputed only where reachable
/// from a change (tests assert full equality of statuses and anchors).
IncrementalStats update_safety_after_failures(const UnitDiskGraph& degraded,
                                              const InterestArea& area,
                                              const std::vector<NodeId>& failed,
                                              SafetyInfo& info);

}  // namespace spr
