#include "safety/distributed.h"

#include <optional>
#include <unordered_map>
#include <vector>

#include "geometry/angle.h"
#include "graph/quadrant_csr.h"
#include "safety/zone_scan.h"

namespace spr {

namespace {

/// What a node broadcasts: its location plus full safety state.
struct SafetyBroadcast {
  Vec2 position{};
  SafetyTuple tuple{};

  bool operator==(const SafetyBroadcast&) const noexcept = default;
};

using NeighborCache = std::unordered_map<NodeId, SafetyBroadcast>;

/// Recomputes one node's tuple (statuses + anchors) from its neighbor
/// cache — the body of Algorithm 2 steps 2-3 as executed locally. Shared by
/// the synchronous and asynchronous drivers.
///
/// `may_flip_statuses` gates the irreversible 1->0 flips: a node must have
/// heard from its whole neighborhood before concluding that a quadrant
/// holds no safe neighbor, otherwise in-flight hellos cause spurious flips
/// (only relevant to the asynchronous driver; the round engine's caches are
/// complete after round 0).
SafetyTuple recompute_tuple(const UnitDiskGraph& g, const InterestArea& area,
                            NodeId self, const NeighborCache& cache,
                            const SafetyTuple& current,
                            bool may_flip_statuses) {
  Vec2 pu = g.position(self);
  SafetyTuple next = current;

  // Both loops walk the graph's quadrant buckets (the same view the flat
  // labeling kernel scans) restricted to neighbors actually heard from, so
  // the protocol's per-round recompute cannot drift from the centralized
  // oracle — and candidates arrive in ascending id order, making the anchor
  // tie-breaks deterministic instead of hash-order dependent. A broadcast's
  // position is its sender's true position, so bucket membership and the
  // old per-message `in_quadrant` test agree exactly.
  const QuadrantZones& zones = g.zones();

  for (ZoneType t : kAllZoneTypes) {
    if (!may_flip_statuses) break;
    if (area.is_edge_node(self)) break;  // pinned at (1,1,1,1)
    if (!next.is_safe(t)) continue;       // monotone: no 0 -> 1 flips
    bool has_safe_neighbor = false;
    for (NodeId v : zones.members(self, t)) {
      auto heard = cache.find(v);
      if (heard != cache.end() && heard->second.tuple.is_safe(t)) {
        has_safe_neighbor = true;
        break;
      }
    }
    if (!has_safe_neighbor) next.set_safe(t, false);
  }

  for (ZoneType t : kAllZoneTypes) {
    if (next.is_safe(t)) continue;
    FirstLastScan scan(pu, t);
    for (NodeId v : zones.members(self, t)) {
      auto heard = cache.find(v);
      if (heard == cache.end()) continue;
      if (heard->second.tuple.is_safe(t)) continue;
      scan.consider(v, heard->second.position);
    }
    ShapeAnchors& a = next.anchors_for(t);
    if (scan.empty()) {
      a.first = a.last = self;
      a.first_pos = a.last_pos = pu;
    } else {
      const SafetyBroadcast& vf = cache.find(scan.first())->second;
      const SafetyBroadcast& vl = cache.find(scan.last())->second;
      const ShapeAnchors& fa = vf.tuple.anchors_for(t);
      const ShapeAnchors& la = vl.tuple.anchors_for(t);
      // Until the upstream neighbor has valid anchors, anchor at it.
      a.first = fa.valid() ? fa.first : kInvalidNode;
      a.first_pos = fa.valid() ? fa.first_pos : vf.position;
      a.last = la.valid() ? la.last : kInvalidNode;
      a.last_pos = la.valid() ? la.last_pos : vl.position;
    }
  }
  return next;
}

/// Per-node protocol state.
struct NodeState {
  NeighborCache cache;
  SafetyTuple tuple{};
  std::optional<SafetyTuple> last_sent;  ///< nothing sent yet when empty
};

}  // namespace

DistributedSafetyResult compute_safety_distributed(const UnitDiskGraph& g,
                                                   const InterestArea& area,
                                                   std::size_t max_rounds) {
  const std::size_t n = g.size();
  if (max_rounds == 0) max_rounds = 4 * n + 8;
  std::vector<NodeState> state(n);

  using Engine = RoundEngine<SafetyBroadcast>;
  Engine engine(g);

  auto process = [&](NodeId self, std::size_t round,
                     std::span<const Engine::Incoming> inbox)
      -> std::optional<SafetyBroadcast> {
    NodeState& me = state[self];
    for (const auto& msg : inbox) me.cache[msg.sender] = msg.payload;

    if (round == 0) {
      // Hello phase: announce position and the initial all-safe tuple.
      me.last_sent = me.tuple;
      return SafetyBroadcast{g.position(self), me.tuple};
    }

    me.tuple = recompute_tuple(g, area, self, me.cache, me.tuple,
                               /*may_flip_statuses=*/true);
    if (!me.last_sent || *me.last_sent != me.tuple) {
      me.last_sent = me.tuple;
      return SafetyBroadcast{g.position(self), me.tuple};
    }
    return std::nullopt;
  };

  EngineStats stats = engine.run(process, max_rounds);

  std::vector<SafetyTuple> tuples(n);
  for (NodeId u = 0; u < n; ++u) tuples[u] = state[u].tuple;
  return DistributedSafetyResult{SafetyInfo(std::move(tuples)), stats};
}

AsyncSafetyResult compute_safety_distributed_async(const UnitDiskGraph& g,
                                                   const InterestArea& area,
                                                   Rng& rng,
                                                   std::size_t max_events) {
  const std::size_t n = g.size();
  if (max_events == 0) {
    // Every (node,type) flip and every anchor refinement triggers at most
    // one broadcast of deg receptions; this cap is far above any real run
    // and only guards against livelock bugs.
    max_events =
        64 * n *
        std::max<std::size_t>(static_cast<std::size_t>(g.average_degree()), 8);
  }
  std::vector<NodeState> state(n);

  using Engine = AsyncEngine<SafetyBroadcast>;
  Engine engine(g, rng);

  auto process = [&](NodeId self, double /*now*/,
                     std::optional<Engine::Incoming> message)
      -> std::optional<SafetyBroadcast> {
    NodeState& me = state[self];
    if (!message) {
      // Initial activation: hello broadcast. Isolated nodes never hear
      // anything, so their (vacuous) flips must be evaluated right here.
      if (g.degree(self) == 0) {
        me.tuple = recompute_tuple(g, area, self, me.cache, me.tuple,
                                   /*may_flip_statuses=*/true);
      }
      me.last_sent = me.tuple;
      return SafetyBroadcast{g.position(self), me.tuple};
    }
    me.cache[message->sender] = message->payload;
    // Flips unlock once the whole neighborhood has been heard (the hello of
    // every neighbor arrives eventually; until then only anchors update).
    bool neighborhood_known = me.cache.size() >= g.degree(self);
    me.tuple =
        recompute_tuple(g, area, self, me.cache, me.tuple, neighborhood_known);
    if (!me.last_sent || *me.last_sent != me.tuple) {
      me.last_sent = me.tuple;
      return SafetyBroadcast{g.position(self), me.tuple};
    }
    return std::nullopt;
  };

  AsyncEngineStats stats = engine.run(process, max_events);

  std::vector<SafetyTuple> tuples(n);
  for (NodeId u = 0; u < n; ++u) tuples[u] = state[u].tuple;
  return AsyncSafetyResult{SafetyInfo(std::move(tuples)), stats};
}

}  // namespace spr
