#pragma once

/// \file distributed.h
/// Distributed construction of the safety information (Algorithm 2) on the
/// synchronous round engine: "the safety status and the estimated shape
/// information are collected and distributed via information exchanges
/// among neighbors ... implemented by broadcasting such information of a
/// node that newly changes its safety status to all its neighbors."
///
/// Round 0 is the hello phase (every node announces position + all-safe
/// tuple); afterwards a node recomputes its tuple and anchors from its
/// neighbor cache each round and broadcasts only when its state changed.
/// The run's EngineStats are the construction cost the paper's Section 5
/// refers to ("the construction cost of safety information has been proved
/// to be the minimum in [7]").

#include "deploy/interest_area.h"
#include "safety/labeling.h"
#include "sim/async_engine.h"
#include "sim/engine.h"

namespace spr {

/// Outcome of the distributed protocol.
struct DistributedSafetyResult {
  SafetyInfo info;     ///< converged tuples + anchors
  EngineStats stats;   ///< rounds / broadcasts / receptions consumed
};

/// Runs the protocol to quiescence (capped at `max_rounds`; 0 means the
/// default cap of 4*n + 8 rounds, ample since unsafety propagates at one
/// hop per round).
DistributedSafetyResult compute_safety_distributed(const UnitDiskGraph& g,
                                                   const InterestArea& area,
                                                   std::size_t max_rounds = 0);

/// Outcome of the asynchronous variant.
struct AsyncSafetyResult {
  SafetyInfo info;
  AsyncEngineStats stats;
};

/// The same protocol on the event-driven engine (sim/async_engine.h):
/// per-link random delays, per-message activations, no rounds. Converges
/// to the identical fixpoint — the construction is self-stabilizing under
/// reordering because status flips are monotone and anchors are a function
/// of the final statuses. `rng` drives the link delays only.
AsyncSafetyResult compute_safety_distributed_async(const UnitDiskGraph& g,
                                                   const InterestArea& area,
                                                   Rng& rng,
                                                   std::size_t max_events = 0);

}  // namespace spr
