#include "safety/tuple.h"

#include <ostream>
#include <sstream>

namespace spr {

std::string SafetyTuple::to_string() const {
  std::ostringstream out;
  out << '(' << (safe[0] ? '1' : '0') << ',' << (safe[1] ? '1' : '0') << ','
      << (safe[2] ? '1' : '0') << ',' << (safe[3] ? '1' : '0') << ')';
  return out.str();
}

Rect estimated_area(Vec2 u, const ShapeAnchors& anchors) noexcept {
  return Rect::from_corners(u, u)
      .expanded_to(anchors.first_pos)
      .expanded_to(anchors.last_pos);
}

std::ostream& operator<<(std::ostream& os, const SafetyTuple& t) {
  return os << t.to_string();
}

}  // namespace spr
