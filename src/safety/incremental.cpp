#include "safety/incremental.h"

#include <array>
#include <deque>

namespace spr {

namespace {

/// Flip condition on the degraded graph (same as Definition 1).
bool must_flip(const UnitDiskGraph& g, const SafetyInfo& info, NodeId u,
               ZoneType t) {
  Vec2 pu = g.position(u);
  for (NodeId v : g.neighbors(u)) {
    if (!in_quadrant(pu, g.position(v), t)) continue;
    if (info.is_safe(v, t)) return false;
  }
  return true;
}

}  // namespace

IncrementalStats update_safety_after_failures(const UnitDiskGraph& degraded,
                                              const InterestArea& area,
                                              const std::vector<NodeId>& failed,
                                              SafetyInfo& info) {
  IncrementalStats stats;
  const std::size_t n = degraded.size();

  // Dead nodes revert to the fresh tuple (their state is meaningless; this
  // matches compute_safety on the degraded graph exactly).
  for (NodeId f : failed) {
    if (f < n) info.tuple(f) = SafetyTuple{};
  }

  std::deque<std::pair<NodeId, ZoneType>> worklist;
  std::vector<std::array<bool, 4>> queued(n, {false, false, false, false});
  auto enqueue = [&](NodeId u, ZoneType t) {
    auto& flag = queued[u][static_cast<size_t>(zone_index(t))];
    if (!flag) {
      flag = true;
      worklist.emplace_back(u, t);
      ++stats.seeds;
    }
  };

  // Seed: every alive node that could have had a failed node in one of its
  // quadrants — i.e. within radio range of a failed position. Positions are
  // retained for dead nodes, so the affected set is a local disc query.
  const double range = degraded.range();
  for (NodeId u = 0; u < n; ++u) {
    if (!degraded.alive(u)) continue;
    Vec2 pu = degraded.position(u);
    for (NodeId f : failed) {
      if (f >= n) continue;
      if (distance(pu, degraded.position(f)) <= range) {
        for (ZoneType t : kAllZoneTypes) enqueue(u, t);
        break;
      }
    }
  }
  stats.seeds = worklist.size();

  // Monotone continuation: losing neighbors can only remove support, so
  // the old fixpoint bounds the new one from above and the worklist closes
  // over exactly the region the failures influence.
  while (!worklist.empty()) {
    auto [u, t] = worklist.front();
    worklist.pop_front();
    queued[u][static_cast<size_t>(zone_index(t))] = false;
    if (!degraded.alive(u)) continue;
    if (area.is_edge_node(u)) continue;
    if (!info.is_safe(u, t)) continue;
    ++stats.reevaluations;
    if (!must_flip(degraded, info, u, t)) continue;
    info.tuple(u).set_safe(t, false);
    ++stats.flips;
    for (NodeId w : degraded.neighbors(u)) {
      if (in_quadrant(degraded.position(w), degraded.position(u), t)) {
        enqueue(w, t);
      }
    }
  }

  stats.anchor_recomputes = recompute_all_anchors(degraded, info);
  return stats;
}

}  // namespace spr
