#include "safety/incremental.h"

#include <array>
#include <deque>

namespace spr {

namespace {

/// Flip condition on the degraded graph (same as Definition 1).
bool must_flip(const UnitDiskGraph& g, const SafetyInfo& info, NodeId u,
               ZoneType t) {
  Vec2 pu = g.position(u);
  for (NodeId v : g.neighbors(u)) {
    if (!in_quadrant(pu, g.position(v), t)) continue;
    if (info.is_safe(v, t)) return false;
  }
  return true;
}

}  // namespace

IncrementalStats update_safety_after_failures(const UnitDiskGraph& degraded,
                                              const InterestArea& area,
                                              const std::vector<NodeId>& failed,
                                              SafetyInfo& info) {
  IncrementalStats stats;
  const std::size_t n = degraded.size();

  // Dead nodes revert to the fresh tuple (their state is meaningless; this
  // matches compute_safety on the degraded graph exactly).
  for (NodeId f : failed) {
    if (f < n) info.tuple(f) = SafetyTuple{};
  }

  std::deque<std::pair<NodeId, ZoneType>> worklist;
  std::vector<std::array<bool, 4>> queued(n, {false, false, false, false});
  auto enqueue = [&](NodeId u, ZoneType t) {
    auto& flag = queued[u][static_cast<size_t>(zone_index(t))];
    if (!flag) {
      flag = true;
      worklist.emplace_back(u, t);
      ++stats.seeds;
    }
  };

  // Seed: every alive node that could have had a failed node in one of its
  // quadrants — i.e. within radio range of a failed position. Positions are
  // retained for dead nodes, so the affected set is a local disc query.
  const double range = degraded.range();
  for (NodeId u = 0; u < n; ++u) {
    if (!degraded.alive(u)) continue;
    Vec2 pu = degraded.position(u);
    for (NodeId f : failed) {
      if (f >= n) continue;
      if (distance(pu, degraded.position(f)) <= range) {
        for (ZoneType t : kAllZoneTypes) enqueue(u, t);
        break;
      }
    }
  }
  stats.seeds = worklist.size();

  // Monotone continuation: losing neighbors can only remove support, so
  // the old fixpoint bounds the new one from above and the worklist closes
  // over exactly the region the failures influence.
  while (!worklist.empty()) {
    auto [u, t] = worklist.front();
    worklist.pop_front();
    queued[u][static_cast<size_t>(zone_index(t))] = false;
    if (!degraded.alive(u)) continue;
    if (area.is_edge_node(u)) continue;
    if (!info.is_safe(u, t)) continue;
    ++stats.reevaluations;
    if (!must_flip(degraded, info, u, t)) continue;
    info.tuple(u).set_safe(t, false);
    ++stats.flips;
    for (NodeId w : degraded.neighbors(u)) {
      if (in_quadrant(degraded.position(w), degraded.position(u), t)) {
        enqueue(w, t);
      }
    }
  }

  stats.anchor_recomputes = recompute_all_anchors(degraded, info);
  return stats;
}

IncrementalStats update_safety_after_moves(const UnitDiskGraph& before,
                                           const InterestArea& area_before,
                                           const UnitDiskGraph& after,
                                           const InterestArea& area_after,
                                           SafetyInfo& info) {
  IncrementalStats stats;
  const std::size_t n = after.size();

  // Phase 1 — the move frontier, per (node, type). A pair's flip condition
  // can only change when a node joined or left its quadrant: an edge
  // appeared or disappeared, or a surviving neighbor's relative quadrant
  // flipped (both endpoints' positions enter the test, so a tandem walk of
  // the old and new sorted neighbor lists sees every case; quadrants
  // partition the plane, so `zone_type` names the one quadrant affected).
  // Losing a member can demote. Gaining one matters only when the gained
  // member is *old-safe* in that type: a promotion chain in the new
  // fixpoint ascends through old-unsafe nodes of one connected cluster
  // and must terminate at a pair whose quadrant gained an old-safe
  // supporter (an old-unsafe gain supports nothing by itself, and a
  // promoted gain lies in the same cluster as its own terminal source) —
  // so only those gains seed cluster resets. Edge-band churn is the other
  // input: a pair that left the band loses its pin (demotable), one that
  // entered it is pinned safe (a promotion source for its dependents).
  std::vector<std::array<bool, 4>> demote_seed(n, {false, false, false, false});
  std::vector<std::array<bool, 4>> promote_src(n, {false, false, false, false});

  // Pre-pass: a node's flip inputs can only have changed if it moved, a
  // neighbor (old or new) moved, or its adjacency changed — everyone else
  // skips the delta walk entirely, so localized motion costs O(moved * deg)
  // rather than O(E).
  std::vector<bool> touched(n, false);
  for (NodeId u = 0; u < n; ++u) {
    if (before.position(u) == after.position(u)) continue;
    touched[u] = true;
    for (NodeId v : before.neighbors(u)) touched[v] = true;
    for (NodeId v : after.neighbors(u)) touched[v] = true;
  }

  // The delta walk visits each undirected edge once (from its lower
  // endpoint) and emits both directions from one set of position loads.
  auto mark_demote = [&](NodeId u, ZoneType t) {
    demote_seed[u][static_cast<size_t>(zone_index(t))] = true;
  };
  auto mark_promote = [&](NodeId u, NodeId gained, ZoneType t) {
    // A gained member promotes only if it arrives old-safe (an unsafe gain
    // supports nothing; a promoted gain shares its cluster's source).
    if (info.is_safe(gained, t)) {
      promote_src[u][static_cast<size_t>(zone_index(t))] = true;
    }
  };
  auto quadrant_delta = [&](NodeId u) {
    Vec2 pu_old = before.position(u);
    Vec2 pu_new = after.position(u);
    const bool u_moved = !(pu_old == pu_new);
    auto old_list = before.neighbors(u);
    auto new_list = after.neighbors(u);
    std::size_t oi = 0, ni = 0;
    while (oi < old_list.size() && old_list[oi] <= u) ++oi;
    while (ni < new_list.size() && new_list[ni] <= u) ++ni;
    while (oi < old_list.size() || ni < new_list.size()) {
      NodeId vo = oi < old_list.size() ? old_list[oi] : kInvalidNode;
      NodeId vn = ni < new_list.size() ? new_list[ni] : kInvalidNode;
      if (vn == kInvalidNode || (vo != kInvalidNode && vo < vn)) {
        // Edge (u, vo) vanished: each endpoint loses the other from the
        // quadrant it occupied.
        Vec2 pv_old = before.position(vo);
        mark_demote(u, zone_type(pu_old, pv_old));
        mark_demote(vo, zone_type(pv_old, pu_old));
        ++oi;
      } else if (vo == kInvalidNode || vn < vo) {
        // Edge (u, vn) appeared: each endpoint gains the other.
        Vec2 pv_new = after.position(vn);
        ZoneType tu = zone_type(pu_new, pv_new);
        mark_promote(u, vn, tu);
        mark_promote(vn, u, zone_type(pv_new, pu_new));
        ++ni;
      } else {
        // Surviving edge: quadrant membership may still have flipped.
        Vec2 pv_old = before.position(vo);
        Vec2 pv_new = after.position(vo);
        if (u_moved || !(pv_old == pv_new)) {
          ZoneType t_old = zone_type(pu_old, pv_old);
          ZoneType t_new = zone_type(pu_new, pv_new);
          if (t_old != t_new) {
            mark_demote(u, t_old);
            mark_promote(u, vo, t_new);
          }
          ZoneType r_old = zone_type(pv_old, pu_old);
          ZoneType r_new = zone_type(pv_new, pu_new);
          if (r_old != r_new) {
            mark_demote(vo, r_old);
            mark_promote(vo, u, r_new);
          }
        }
        ++oi;
        ++ni;
      }
    }
  };
  for (NodeId u = 0; u < n; ++u) {
    if (!after.alive(u)) continue;
    if (touched[u]) quadrant_delta(u);
    bool was_edge = area_before.is_edge_node(u);
    bool is_edge = area_after.is_edge_node(u);
    if (was_edge && !is_edge) {
      demote_seed[u] = {true, true, true, true};
    } else if (!was_edge && is_edge) {
      // Newly pinned: the pin itself is applied below; dependents may gain
      // support through the promotion cascade.
      for (ZoneType t : kAllZoneTypes) {
        if (!info.is_safe(u, t)) {
          promote_src[u][static_cast<size_t>(zone_index(t))] = true;
        }
      }
    }
  }

  // Phase 2 — promotion: re-raise to safe the connected type-t unsafe
  // cluster (new-graph edges) of every unsafe promotion source. Any pair
  // the new fixpoint promotes chains, through type-t support (which is
  // acyclic — a supporter lies strictly inside the quadrant direction), to
  // a source inside its own cluster, so the raised state is again an
  // over-approximation of the new fixpoint and the demotion worklist below
  // converges onto it exactly. Raised pairs shed their stale anchors (safe
  // pairs carry none) and re-enter the worklist.
  std::vector<std::array<bool, 4>> raised(n, {false, false, false, false});
  std::vector<NodeId> cluster;
  for (NodeId u = 0; u < n; ++u) {
    for (ZoneType t : kAllZoneTypes) {
      const auto ti = static_cast<size_t>(zone_index(t));
      if (!promote_src[u][ti] || raised[u][ti]) continue;
      if (!after.alive(u) || info.is_safe(u, t)) continue;
      cluster.clear();
      cluster.push_back(u);
      raised[u][ti] = true;
      for (std::size_t head = 0; head < cluster.size(); ++head) {
        NodeId w = cluster[head];
        for (NodeId v : after.neighbors(w)) {
          if (raised[v][ti] || !after.alive(v) || info.is_safe(v, t)) continue;
          raised[v][ti] = true;
          cluster.push_back(v);
        }
      }
      for (NodeId w : cluster) {
        info.tuple(w).set_safe(t, true);
        info.tuple(w).anchors_for(t) = ShapeAnchors{};
        demote_seed[w][ti] = true;
        ++stats.promotions;
      }
    }
  }

  // Phase 3 — demotion worklist on the new graph, exactly the failure
  // updater's monotone continuation, seeded with every pair whose support
  // shrank, lost its pin, or was optimistically raised.
  std::deque<std::pair<NodeId, ZoneType>> worklist;
  std::vector<std::array<bool, 4>> queued(n, {false, false, false, false});
  auto enqueue = [&](NodeId u, ZoneType t) {
    auto& flag = queued[u][static_cast<size_t>(zone_index(t))];
    if (!flag) {
      flag = true;
      worklist.emplace_back(u, t);
    }
  };
  for (NodeId u = 0; u < n; ++u) {
    if (!after.alive(u)) continue;
    for (ZoneType t : kAllZoneTypes) {
      if (demote_seed[u][static_cast<size_t>(zone_index(t))]) enqueue(u, t);
    }
  }
  stats.seeds = worklist.size();

  while (!worklist.empty()) {
    auto [u, t] = worklist.front();
    worklist.pop_front();
    queued[u][static_cast<size_t>(zone_index(t))] = false;
    if (!after.alive(u)) continue;
    if (area_after.is_edge_node(u)) continue;  // pinned at (1,1,1,1)
    if (!info.is_safe(u, t)) continue;
    ++stats.reevaluations;
    if (!must_flip(after, info, u, t)) continue;
    info.tuple(u).set_safe(t, false);
    ++stats.flips;
    for (NodeId w : after.neighbors(u)) {
      if (in_quadrant(after.position(w), after.position(u), t)) {
        enqueue(w, t);
      }
    }
  }

  stats.anchor_recomputes = recompute_all_anchors(after, info);
  return stats;
}

}  // namespace spr
