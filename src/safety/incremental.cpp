#include "safety/incremental.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <vector>

#include "graph/spatial_grid.h"
#include "util/arena.h"

namespace spr {

namespace {

std::uint64_t* zeroed_words(Arena& arena, std::size_t words) {
  auto* p = static_cast<std::uint64_t*>(
      arena.allocate(words * sizeof(std::uint64_t), alignof(std::uint64_t)));
  std::memset(p, 0, words * sizeof(std::uint64_t));
  return p;
}

void set_bit(std::uint64_t* bits, std::uint32_t i) {
  bits[i >> 6] |= 1ull << (i & 63);
}

bool test_bit(const std::uint64_t* bits, std::uint32_t i) {
  return (bits[i >> 6] >> (i & 63)) & 1u;
}

/// Calls fn(key) for every set bit, ascending.
template <typename Fn>
void for_each_key(const std::uint64_t* bits, std::size_t words, Fn&& fn) {
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t word = bits[w];
    while (word != 0) {
      const int b = std::countr_zero(word);
      word &= word - 1;
      fn(static_cast<std::uint32_t>(w * 64 + b));
    }
  }
}

/// Replays the kernel's demotions into the tuple form.
void apply_flips(const FlatLabeler& labeler, SafetyInfo& info) {
  for (const std::uint32_t k : labeler.flipped()) {
    info.tuple(FlatLabeler::key_node(k))
        .set_safe(kAllZoneTypes[FlatLabeler::key_type(k)], false);
  }
}

}  // namespace

IncrementalStats update_safety_after_failures(const UnitDiskGraph& degraded,
                                              const InterestArea& area,
                                              const std::vector<NodeId>& failed,
                                              SafetyInfo& info,
                                              TaskPool* pool) {
  IncrementalStats stats;
  const std::size_t n = degraded.size();

  // Dead nodes revert to the fresh tuple (their state is meaningless; this
  // matches compute_safety on the degraded graph exactly).
  for (NodeId f : failed) {
    if (f < n) info.tuple(f) = SafetyTuple{};
  }

  degraded.zones(pool);  // patched forward by with_failures when available
  Arena& arena = FlatLabeler::scratch();
  arena.reset();
  FlatLabeler labeler(degraded, &area, arena);
  labeler.start_from(info);

  // Seed: every alive node that could have had a failed node in one of its
  // quadrants — i.e. within radio range of a failed position. Positions are
  // retained for dead nodes, so each failure is one disc query on the
  // shared spatial grid rather than a scan of all n nodes.
  static thread_local std::vector<NodeId> near;
  near.clear();
  for (NodeId f : failed) {
    if (f >= n) continue;
    degraded.grid().query_radius(degraded.position(f), degraded.range(), f,
                                 near);
  }
  std::sort(near.begin(), near.end());
  near.erase(std::unique(near.begin(), near.end()), near.end());
  for (NodeId u : near) {
    if (!degraded.alive(u)) continue;
    for (int ti = 0; ti < 4; ++ti) {
      if (labeler.enqueue(u, ti)) ++stats.seeds;
    }
  }

  // Monotone continuation: losing neighbors can only remove support, so
  // the old fixpoint bounds the new one from above and the worklist closes
  // over exactly the region the failures influence.
  labeler.drain(pool);
  stats.reevaluations = labeler.stats().reevaluations;
  stats.flips = labeler.stats().flips;
  apply_flips(labeler, info);

  stats.anchor_recomputes = labeler.compute_anchors(info, pool);
  stats.arena_high_water = arena.bytes_allocated();
  return stats;
}

IncrementalStats update_safety_after_moves(const UnitDiskGraph& before,
                                           const InterestArea& area_before,
                                           const UnitDiskGraph& after,
                                           const InterestArea& area_after,
                                           SafetyInfo& info, TaskPool* pool) {
  IncrementalStats stats;
  const std::size_t n = after.size();

  after.zones(pool);  // patched forward by with_moves when available
  Arena& arena = FlatLabeler::scratch();
  arena.reset();
  FlatLabeler labeler(after, &area_after, arena);
  labeler.start_from(info);

  const std::size_t node_words = (n + 63) / 64;
  const std::size_t key_words = (4 * n + 63) / 64;

  // Phase 1 — the move frontier, per (node, type). A pair's flip condition
  // can only change when a node joined or left its quadrant: an edge
  // appeared or disappeared, or a surviving neighbor's relative quadrant
  // flipped (both endpoints' positions enter the test, so a tandem walk of
  // the old and new sorted neighbor lists sees every case; quadrants
  // partition the plane, so `zone_type` names the one quadrant affected).
  // Losing a member can demote. Gaining one matters only when the gained
  // member is *old-safe* in that type: a promotion chain in the new
  // fixpoint ascends through old-unsafe nodes of one connected cluster
  // and must terminate at a pair whose quadrant gained an old-safe
  // supporter (an old-unsafe gain supports nothing by itself, and a
  // promoted gain lies in the same cluster as its own terminal source) —
  // so only those gains seed cluster resets. Edge-band churn is the other
  // input: a pair that left the band loses its pin (demotable), one that
  // entered it is pinned safe (a promotion source for its dependents).
  std::uint64_t* demote_seed = zeroed_words(arena, key_words);
  std::uint64_t* promote_src = zeroed_words(arena, key_words);

  // Pre-pass: a node's flip inputs can only have changed if it moved, a
  // neighbor (old or new) moved, or its adjacency changed — everyone else
  // skips the delta walk entirely, so localized motion costs O(moved * deg)
  // rather than O(E).
  std::uint64_t* touched = zeroed_words(arena, node_words);
  for (NodeId u = 0; u < n; ++u) {
    if (before.position(u) == after.position(u)) continue;
    set_bit(touched, u);
    for (NodeId v : before.neighbors(u)) set_bit(touched, v);
    for (NodeId v : after.neighbors(u)) set_bit(touched, v);
  }

  // The delta walk visits each undirected edge once (from its lower
  // endpoint) and emits both directions from one set of position loads.
  auto mark_demote = [&](NodeId u, ZoneType t) {
    set_bit(demote_seed, FlatLabeler::key(u, zone_index(t)));
  };
  auto mark_promote = [&](NodeId u, NodeId gained, ZoneType t) {
    // A gained member promotes only if it arrives old-safe (an unsafe gain
    // supports nothing; a promoted gain shares its cluster's source).
    if (labeler.safe_bit(gained, zone_index(t))) {
      set_bit(promote_src, FlatLabeler::key(u, zone_index(t)));
    }
  };
  auto quadrant_delta = [&](NodeId u) {
    Vec2 pu_old = before.position(u);
    Vec2 pu_new = after.position(u);
    const bool u_moved = !(pu_old == pu_new);
    auto old_list = before.neighbors(u);
    auto new_list = after.neighbors(u);
    std::size_t oi = 0, ni = 0;
    while (oi < old_list.size() && old_list[oi] <= u) ++oi;
    while (ni < new_list.size() && new_list[ni] <= u) ++ni;
    while (oi < old_list.size() || ni < new_list.size()) {
      NodeId vo = oi < old_list.size() ? old_list[oi] : kInvalidNode;
      NodeId vn = ni < new_list.size() ? new_list[ni] : kInvalidNode;
      if (vn == kInvalidNode || (vo != kInvalidNode && vo < vn)) {
        // Edge (u, vo) vanished: each endpoint loses the other from the
        // quadrant it occupied.
        Vec2 pv_old = before.position(vo);
        mark_demote(u, zone_type(pu_old, pv_old));
        mark_demote(vo, zone_type(pv_old, pu_old));
        ++oi;
      } else if (vo == kInvalidNode || vn < vo) {
        // Edge (u, vn) appeared: each endpoint gains the other.
        Vec2 pv_new = after.position(vn);
        mark_promote(u, vn, zone_type(pu_new, pv_new));
        mark_promote(vn, u, zone_type(pv_new, pu_new));
        ++ni;
      } else {
        // Surviving edge: quadrant membership may still have flipped.
        Vec2 pv_old = before.position(vo);
        Vec2 pv_new = after.position(vo);
        if (u_moved || !(pv_old == pv_new)) {
          ZoneType t_old = zone_type(pu_old, pv_old);
          ZoneType t_new = zone_type(pu_new, pv_new);
          if (t_old != t_new) {
            mark_demote(u, t_old);
            mark_promote(u, vo, t_new);
          }
          ZoneType r_old = zone_type(pv_old, pu_old);
          ZoneType r_new = zone_type(pv_new, pu_new);
          if (r_old != r_new) {
            mark_demote(vo, r_old);
            mark_promote(vo, u, r_new);
          }
        }
        ++oi;
        ++ni;
      }
    }
  };
  for (NodeId u = 0; u < n; ++u) {
    if (!after.alive(u)) continue;
    if (test_bit(touched, u)) quadrant_delta(u);
    bool was_edge = area_before.is_edge_node(u);
    bool is_edge = area_after.is_edge_node(u);
    if (was_edge && !is_edge) {
      for (int ti = 0; ti < 4; ++ti) {
        set_bit(demote_seed, FlatLabeler::key(u, ti));
      }
    } else if (!was_edge && is_edge) {
      // Newly pinned: the pin itself is applied below; dependents may gain
      // support through the promotion cascade.
      for (int ti = 0; ti < 4; ++ti) {
        if (!labeler.safe_bit(u, ti)) {
          set_bit(promote_src, FlatLabeler::key(u, ti));
        }
      }
    }
  }

  // Phase 2 — promotion: re-raise to safe the connected type-t unsafe
  // cluster (new-graph edges) of every unsafe promotion source. Any pair
  // the new fixpoint promotes chains, through type-t support (which is
  // acyclic — a supporter lies strictly inside the quadrant direction), to
  // a source inside its own cluster, so the raised state is again an
  // over-approximation of the new fixpoint and the demotion worklist below
  // converges onto it exactly. Raised pairs shed their stale anchors (safe
  // pairs carry none) and re-enter the worklist.
  ArenaVector<std::uint32_t> sources{ArenaAllocator<std::uint32_t>(arena)};
  sources.reserve(4 * n);
  for_each_key(promote_src, key_words,
               [&](std::uint32_t k) { sources.push_back(k); });
  for (const std::uint32_t k :
       labeler.raise_clusters({sources.data(), sources.size()}, pool)) {
    const NodeId u = FlatLabeler::key_node(k);
    const ZoneType t = kAllZoneTypes[FlatLabeler::key_type(k)];
    info.tuple(u).set_safe(t, true);
    info.tuple(u).anchors_for(t) = ShapeAnchors{};
    set_bit(demote_seed, k);
    ++stats.promotions;
  }

  // Phase 3 — demotion worklist on the new graph, exactly the failure
  // updater's monotone continuation, seeded with every pair whose support
  // shrank, lost its pin, or was optimistically raised.
  for_each_key(demote_seed, key_words, [&](std::uint32_t k) {
    const NodeId u = FlatLabeler::key_node(k);
    if (!after.alive(u)) return;
    if (labeler.enqueue(u, FlatLabeler::key_type(k))) ++stats.seeds;
  });

  labeler.drain(pool);
  stats.reevaluations = labeler.stats().reevaluations;
  stats.flips = labeler.stats().flips;
  apply_flips(labeler, info);

  stats.anchor_recomputes = labeler.compute_anchors(info, pool);
  stats.arena_high_water = arena.bytes_allocated();
  return stats;
}

}  // namespace spr
