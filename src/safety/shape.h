#pragma once

/// \file shape.h
/// Estimated unsafe-area rectangles E_i(u) as routing-time values: what a
/// node can learn from its own tuple and from its 1-hop neighbors'
/// advertised shape information (paper Section 4: "When u can collect an
/// unsafe area estimation from its unsafe neighbor v, u is neighboring such
/// an unsafe area").

#include <optional>
#include <vector>

#include "geometry/quadrant.h"
#include "geometry/rect.h"
#include "safety/labeling.h"

namespace spr {

/// One advertised estimate: owner v, type i, and E_i(v).
struct UnsafeAreaEstimate {
  NodeId owner = kInvalidNode;
  ZoneType type = ZoneType::k1;
  Vec2 origin{};        ///< L(v); one corner of the rectangle
  Rect rect;            ///< E_i(v)

  /// The corner of E_i(v) diagonally opposite `origin` in the quadrant
  /// direction — (x_{v(1)}, y_{v(2)}) in the paper's type-1 notation. The
  /// ray origin->far_corner() splits Q_i(v) into the critical and forbidden
  /// regions.
  Vec2 far_corner() const noexcept;
};

/// E_t(v) for a type-t unsafe node v; nullopt when v is type-t safe.
std::optional<UnsafeAreaEstimate> estimate_for(const UnitDiskGraph& g,
                                               const SafetyInfo& info,
                                               NodeId v, ZoneType t);

/// All estimates visible at u: u's own unsafe types plus every unsafe type
/// of every neighbor. This is exactly the information a real node holds
/// after the construction protocol.
std::vector<UnsafeAreaEstimate> visible_estimates(const UnitDiskGraph& g,
                                                  const SafetyInfo& info,
                                                  NodeId u);

/// Union bounding box of `estimates` inflated by `margin`; nullopt when the
/// list is empty. SLGF2 confines its perimeter phase to this rectangle.
std::optional<Rect> covering_rect(const std::vector<UnsafeAreaEstimate>& estimates,
                                  double margin);

}  // namespace spr
