#include "report/serialize.h"

#include <algorithm>
#include <set>
#include <utility>

namespace spr {

// ------------------------------------------------------------ stats form

void summary_stats_to_json(JsonWriter& w, const Summary& s) {
  w.begin_object();
  w.key("count").value(s.count());
  w.key("mean").value(s.mean());
  w.key("min").value(s.min());
  w.key("max").value(s.max());
  w.key("stddev").value(s.stddev());
  w.end_object();
}

JsonValue summary_stats(const Summary& s) {
  JsonValue v = JsonValue::object();
  v.set("count", JsonValue::of(static_cast<std::uint64_t>(s.count())));
  v.set("mean", JsonValue::of(s.mean()));
  v.set("min", JsonValue::of(s.min()));
  v.set("max", JsonValue::of(s.max()));
  v.set("stddev", JsonValue::of(s.stddev()));
  return v;
}

void aggregate_stats_to_json(JsonWriter& w, const RouteAggregate& agg) {
  w.begin_object();
  w.key("requested").value(agg.requested);
  w.key("attempted").value(agg.attempted);
  w.key("pair_shortfall").value(agg.pair_shortfall());
  w.key("delivered").value(agg.delivered);
  w.key("delivery_ratio").value(agg.delivery_ratio());
  w.key("hops");
  summary_stats_to_json(w, agg.hops);
  w.key("length");
  summary_stats_to_json(w, agg.length);
  w.key("stretch_hops");
  summary_stats_to_json(w, agg.stretch_hops);
  w.key("stretch_length");
  summary_stats_to_json(w, agg.stretch_length);
  w.key("perimeter_hops");
  summary_stats_to_json(w, agg.perimeter_hops);
  w.key("backup_hops");
  summary_stats_to_json(w, agg.backup_hops);
  w.key("local_minima");
  summary_stats_to_json(w, agg.local_minima);
  w.end_object();
}

void sweep_section_to_json(JsonWriter& w, const SweepSection& section) {
  w.begin_object();
  w.key("model").value(deploy_model_tag(section.model));
  w.key("networks_per_point").value(section.networks_per_point);
  w.key("pairs_per_network").value(section.pairs_per_network);
  w.key("base_seed").value(section.base_seed);
  w.key("threads").value(section.threads);
  w.key("wall_seconds").value(section.wall_seconds);
  w.key("points").begin_array();
  for (const auto& point : section.points) {
    w.begin_object();
    w.key("nodes").value(point.node_count);
    w.key("schemes").begin_object();
    for (const auto& [label, agg] : point.by_scheme) {
      w.key(label);
      aggregate_stats_to_json(w, agg);
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void timings_to_json(JsonWriter& w, const SweepTimings& t) {
  w.begin_object();
  w.key("construction_seconds").value(t.construction_seconds);
  w.key("pair_draw_seconds").value(t.pair_draw_seconds);
  w.key("oracle_seconds").value(t.oracle_seconds);
  w.key("routing_seconds").value(t.routing_seconds);
  w.key("oracle_bfs_searches").value(t.bfs_searches);
  w.key("oracle_dijkstra_searches").value(t.dijkstra_searches);
  w.key("pairs_requested").value(t.pairs_requested);
  w.key("pairs_routed").value(t.pairs_routed);
  w.end_object();
}

// ------------------------------------------------------------- full form

namespace {

/// Reads a required finite-number member into `out`.
bool read_double(const JsonValue& v, const char* key, double& out) {
  const JsonValue* m = v.find(key);
  if (m == nullptr || !m->is_number()) return false;
  out = m->as_double();
  return true;
}

bool read_uint(const JsonValue& v, const char* key, std::uint64_t& out) {
  const JsonValue* m = v.find(key);
  if (m == nullptr || !m->is_integer()) return false;
  out = m->as_uint64();
  return true;
}

bool read_size(const JsonValue& v, const char* key, std::size_t& out) {
  std::uint64_t u = 0;
  if (!read_uint(v, key, u)) return false;
  out = static_cast<std::size_t>(u);
  return true;
}

bool read_int(const JsonValue& v, const char* key, int& out) {
  const JsonValue* m = v.find(key);
  if (m == nullptr || !m->is_integer()) return false;
  std::int64_t i = m->as_int64(INT64_MIN);
  if (i < INT32_MIN || i > INT32_MAX) return false;
  out = static_cast<int>(i);
  return true;
}

bool read_summary(const JsonValue& v, const char* key, Summary& out) {
  const JsonValue* m = v.find(key);
  return m != nullptr && from_json(*m, out);
}

}  // namespace

void to_json(JsonWriter& w, const Summary& s) {
  w.begin_object();
  w.key("values").begin_array();
  for (double value : s.values()) w.value(value);
  w.end_array();
  w.end_object();
}

bool from_json(const JsonValue& v, Summary& out) {
  const JsonValue* values = v.find("values");
  if (values == nullptr || !values->is_array()) return false;
  Summary s;
  for (const JsonValue& item : values->items()) {
    if (!item.is_number()) return false;  // null = a non-finite sample; reject
    s.add(item.as_double());
  }
  out = std::move(s);
  return true;
}

void to_json(JsonWriter& w, const RouteAggregate& agg) {
  w.begin_object();
  w.key("requested").value(agg.requested);
  w.key("attempted").value(agg.attempted);
  w.key("delivered").value(agg.delivered);
  w.key("hops");
  to_json(w, agg.hops);
  w.key("length");
  to_json(w, agg.length);
  w.key("stretch_hops");
  to_json(w, agg.stretch_hops);
  w.key("stretch_length");
  to_json(w, agg.stretch_length);
  w.key("perimeter_hops");
  to_json(w, agg.perimeter_hops);
  w.key("backup_hops");
  to_json(w, agg.backup_hops);
  w.key("local_minima");
  to_json(w, agg.local_minima);
  w.end_object();
}

bool from_json(const JsonValue& v, RouteAggregate& out) {
  if (!v.is_object()) return false;
  RouteAggregate agg;
  if (!read_size(v, "requested", agg.requested) ||
      !read_size(v, "attempted", agg.attempted) ||
      !read_size(v, "delivered", agg.delivered) ||
      !read_summary(v, "hops", agg.hops) ||
      !read_summary(v, "length", agg.length) ||
      !read_summary(v, "stretch_hops", agg.stretch_hops) ||
      !read_summary(v, "stretch_length", agg.stretch_length) ||
      !read_summary(v, "perimeter_hops", agg.perimeter_hops) ||
      !read_summary(v, "backup_hops", agg.backup_hops) ||
      !read_summary(v, "local_minima", agg.local_minima)) {
    return false;
  }
  out = std::move(agg);
  return true;
}

void to_json(JsonWriter& w, const CellResult& cell) {
  w.begin_object();
  for (const auto& [label, agg] : cell) {
    w.key(label);
    to_json(w, agg);
  }
  w.end_object();
}

bool from_json(const JsonValue& v, CellResult& out) {
  if (!v.is_object()) return false;
  CellResult cell;
  for (const auto& [label, value] : v.members()) {
    RouteAggregate agg;
    if (!from_json(value, agg)) return false;
    if (!cell.emplace(label, std::move(agg)).second) return false;
  }
  out = std::move(cell);
  return true;
}

void to_json(JsonWriter& w, const SweepPoint& point) {
  w.begin_object();
  w.key("nodes").value(point.node_count);
  w.key("schemes");
  to_json(w, point.by_scheme);
  w.end_object();
}

bool from_json(const JsonValue& v, SweepPoint& out) {
  if (!v.is_object()) return false;
  SweepPoint point;
  if (!read_int(v, "nodes", point.node_count)) return false;
  if (!from_json(v.get("schemes"), point.by_scheme)) return false;
  out = std::move(point);
  return true;
}

// --------------------------------------------------------- stream results

JsonValue stream_stats_json(const StreamStats& stats) {
  auto uint_of = [](std::size_t n) {
    return JsonValue::of(static_cast<std::uint64_t>(n));
  };
  JsonValue root = JsonValue::object();
  root.set("virtual_time", JsonValue::of(stats.virtual_time));
  root.set("events", uint_of(stats.events));
  root.set("repins", uint_of(stats.repins));
  JsonValue waves = JsonValue::array();
  for (const WaveRecord& record : stats.waves) {
    JsonValue wave = JsonValue::object();
    wave.set("time", JsonValue::of(record.time));
    wave.set("casualties", uint_of(record.casualties));
    wave.set("packets_in_flight", uint_of(record.packets_in_flight));
    wave.set("packets_dropped", uint_of(record.packets_dropped));
    wave.set("relabel_seeds", uint_of(record.relabel.seeds));
    wave.set("relabel_reevaluations", uint_of(record.relabel.reevaluations));
    wave.set("relabel_flips", uint_of(record.relabel.flips));
    if (record.verified) {
      wave.set("matches_full_recompute",
               JsonValue::of(record.matches_full_recompute));
    }
    waves.push(std::move(wave));
  }
  root.set("waves", std::move(waves));
  JsonValue repins = JsonValue::array();
  for (const RepinRecord& record : stats.repin_records) {
    JsonValue repin = JsonValue::object();
    repin.set("time", JsonValue::of(record.time));
    repin.set("moved", uint_of(record.moved));
    repin.set("edges_added", uint_of(record.edges_added));
    repin.set("edges_removed", uint_of(record.edges_removed));
    repin.set("packets_in_flight", uint_of(record.packets_in_flight));
    repin.set("packets_dropped", uint_of(record.packets_dropped));
    repin.set("relabel_seeds", uint_of(record.relabel.seeds));
    repin.set("relabel_reevaluations", uint_of(record.relabel.reevaluations));
    repin.set("relabel_demotions", uint_of(record.relabel.flips));
    repin.set("relabel_promotions", uint_of(record.relabel.promotions));
    if (record.verified) {
      repin.set("matches_full_recompute",
                JsonValue::of(record.matches_full_recompute));
    }
    repins.push(std::move(repin));
  }
  root.set("repin_records", std::move(repins));
  JsonValue schemes = JsonValue::object();
  for (const StreamSchemeStats& s : stats.schemes) {
    JsonValue scheme = JsonValue::object();
    scheme.set("injected", uint_of(s.injected));
    scheme.set("delivered", uint_of(s.delivered));
    scheme.set("dead_end", uint_of(s.dead_end));
    scheme.set("ttl_expired", uint_of(s.ttl_expired));
    scheme.set("node_failed", uint_of(s.node_failed));
    scheme.set("delivery_ratio", JsonValue::of(s.delivery_ratio()));
    scheme.set("hops", summary_stats(s.hops));
    scheme.set("length", summary_stats(s.length));
    scheme.set("stretch_hops", summary_stats(s.stretch_hops));
    scheme.set("latency", summary_stats(s.latency));
    scheme.set("replans", summary_stats(s.replans));
    scheme.set("local_minima", summary_stats(s.local_minima));
    schemes.set(s.label, std::move(scheme));
  }
  root.set("schemes", std::move(schemes));
  return root;
}

void stream_stats_to_json(JsonWriter& w, const StreamStats& stats) {
  stream_stats_json(stats).write(w);
}

void to_json(JsonWriter& w, const IncrementalStats& stats) {
  w.begin_object();
  w.key("seeds").value(static_cast<std::uint64_t>(stats.seeds));
  w.key("reevaluations").value(static_cast<std::uint64_t>(stats.reevaluations));
  w.key("flips").value(static_cast<std::uint64_t>(stats.flips));
  w.key("promotions").value(static_cast<std::uint64_t>(stats.promotions));
  w.key("anchor_recomputes")
      .value(static_cast<std::uint64_t>(stats.anchor_recomputes));
  w.key("arena_high_water")
      .value(static_cast<std::uint64_t>(stats.arena_high_water));
  w.end_object();
}

bool from_json(const JsonValue& v, IncrementalStats& out) {
  if (!v.is_object()) return false;
  IncrementalStats stats;
  if (!read_size(v, "seeds", stats.seeds) ||
      !read_size(v, "reevaluations", stats.reevaluations) ||
      !read_size(v, "flips", stats.flips) ||
      !read_size(v, "promotions", stats.promotions) ||
      !read_size(v, "anchor_recomputes", stats.anchor_recomputes)) {
    return false;
  }
  // Absent in artifacts written before the stat existed; default 0.
  read_size(v, "arena_high_water", stats.arena_high_water);
  out = stats;
  return true;
}

void to_json(JsonWriter& w, const RepinRecord& record) {
  w.begin_object();
  w.key("time").value(record.time);
  w.key("moved").value(static_cast<std::uint64_t>(record.moved));
  w.key("edges_added").value(static_cast<std::uint64_t>(record.edges_added));
  w.key("edges_removed")
      .value(static_cast<std::uint64_t>(record.edges_removed));
  w.key("packets_in_flight")
      .value(static_cast<std::uint64_t>(record.packets_in_flight));
  w.key("packets_dropped")
      .value(static_cast<std::uint64_t>(record.packets_dropped));
  w.key("relabel");
  to_json(w, record.relabel);
  w.key("verified").value(record.verified);
  w.key("matches_full_recompute").value(record.matches_full_recompute);
  w.end_object();
}

bool from_json(const JsonValue& v, RepinRecord& out) {
  if (!v.is_object()) return false;
  RepinRecord record;
  const JsonValue* verified = v.find("verified");
  const JsonValue* matches = v.find("matches_full_recompute");
  if (!read_double(v, "time", record.time) ||
      !read_size(v, "moved", record.moved) ||
      !read_size(v, "edges_added", record.edges_added) ||
      !read_size(v, "edges_removed", record.edges_removed) ||
      !read_size(v, "packets_in_flight", record.packets_in_flight) ||
      !read_size(v, "packets_dropped", record.packets_dropped) ||
      !from_json(v.get("relabel"), record.relabel) || verified == nullptr ||
      !verified->is_bool() || matches == nullptr || !matches->is_bool()) {
    return false;
  }
  record.verified = verified->as_bool();
  record.matches_full_recompute = matches->as_bool();
  out = std::move(record);
  return true;
}

void to_json(JsonWriter& w, const WaveRecord& record) {
  w.begin_object();
  w.key("time").value(record.time);
  w.key("casualties").value(static_cast<std::uint64_t>(record.casualties));
  w.key("packets_in_flight")
      .value(static_cast<std::uint64_t>(record.packets_in_flight));
  w.key("packets_dropped")
      .value(static_cast<std::uint64_t>(record.packets_dropped));
  w.key("relabel");
  to_json(w, record.relabel);
  w.key("verified").value(record.verified);
  w.key("matches_full_recompute").value(record.matches_full_recompute);
  w.end_object();
}

bool from_json(const JsonValue& v, WaveRecord& out) {
  if (!v.is_object()) return false;
  WaveRecord record;
  const JsonValue* verified = v.find("verified");
  const JsonValue* matches = v.find("matches_full_recompute");
  if (!read_double(v, "time", record.time) ||
      !read_size(v, "casualties", record.casualties) ||
      !read_size(v, "packets_in_flight", record.packets_in_flight) ||
      !read_size(v, "packets_dropped", record.packets_dropped) ||
      !from_json(v.get("relabel"), record.relabel) || verified == nullptr ||
      !verified->is_bool() || matches == nullptr || !matches->is_bool()) {
    return false;
  }
  record.verified = verified->as_bool();
  record.matches_full_recompute = matches->as_bool();
  out = std::move(record);
  return true;
}

void to_json(JsonWriter& w, const StreamSchemeStats& stats) {
  w.begin_object();
  w.key("label").value(stats.label);
  w.key("injected").value(static_cast<std::uint64_t>(stats.injected));
  w.key("delivered").value(static_cast<std::uint64_t>(stats.delivered));
  w.key("dead_end").value(static_cast<std::uint64_t>(stats.dead_end));
  w.key("ttl_expired").value(static_cast<std::uint64_t>(stats.ttl_expired));
  w.key("node_failed").value(static_cast<std::uint64_t>(stats.node_failed));
  w.key("hops");
  to_json(w, stats.hops);
  w.key("length");
  to_json(w, stats.length);
  w.key("stretch_hops");
  to_json(w, stats.stretch_hops);
  w.key("latency");
  to_json(w, stats.latency);
  w.key("replans");
  to_json(w, stats.replans);
  w.key("local_minima");
  to_json(w, stats.local_minima);
  w.end_object();
}

bool from_json(const JsonValue& v, StreamSchemeStats& out) {
  if (!v.is_object()) return false;
  StreamSchemeStats stats;
  const JsonValue* label = v.find("label");
  if (label == nullptr || !label->is_string()) return false;
  stats.label = label->as_string();
  if (!read_size(v, "injected", stats.injected) ||
      !read_size(v, "delivered", stats.delivered) ||
      !read_size(v, "dead_end", stats.dead_end) ||
      !read_size(v, "ttl_expired", stats.ttl_expired) ||
      !read_size(v, "node_failed", stats.node_failed) ||
      !read_summary(v, "hops", stats.hops) ||
      !read_summary(v, "length", stats.length) ||
      !read_summary(v, "stretch_hops", stats.stretch_hops) ||
      !read_summary(v, "latency", stats.latency) ||
      !read_summary(v, "replans", stats.replans) ||
      !read_summary(v, "local_minima", stats.local_minima)) {
    return false;
  }
  out = std::move(stats);
  return true;
}

void to_json(JsonWriter& w, const StreamStats& stats) {
  w.begin_object();
  w.key("virtual_time").value(stats.virtual_time);
  w.key("events").value(static_cast<std::uint64_t>(stats.events));
  w.key("repins").value(static_cast<std::uint64_t>(stats.repins));
  w.key("waves").begin_array();
  for (const WaveRecord& record : stats.waves) to_json(w, record);
  w.end_array();
  w.key("repin_records").begin_array();
  for (const RepinRecord& record : stats.repin_records) to_json(w, record);
  w.end_array();
  w.key("schemes").begin_array();
  for (const StreamSchemeStats& s : stats.schemes) to_json(w, s);
  w.end_array();
  w.end_object();
}

bool from_json(const JsonValue& v, StreamStats& out) {
  if (!v.is_object()) return false;
  StreamStats stats;
  if (!read_double(v, "virtual_time", stats.virtual_time) ||
      !read_size(v, "events", stats.events) ||
      !read_size(v, "repins", stats.repins)) {
    return false;
  }
  const JsonValue* waves = v.find("waves");
  const JsonValue* repins = v.find("repin_records");
  const JsonValue* schemes = v.find("schemes");
  if (waves == nullptr || !waves->is_array() || repins == nullptr ||
      !repins->is_array() || schemes == nullptr || !schemes->is_array()) {
    return false;
  }
  for (const JsonValue& item : waves->items()) {
    WaveRecord record;
    if (!from_json(item, record)) return false;
    stats.waves.push_back(std::move(record));
  }
  for (const JsonValue& item : repins->items()) {
    RepinRecord record;
    if (!from_json(item, record)) return false;
    stats.repin_records.push_back(std::move(record));
  }
  for (const JsonValue& item : schemes->items()) {
    StreamSchemeStats s;
    if (!from_json(item, s)) return false;
    stats.schemes.push_back(std::move(s));
  }
  out = std::move(stats);
  return true;
}

void to_json(JsonWriter& w, const SweepTimings& t) { timings_to_json(w, t); }

bool from_json(const JsonValue& v, SweepTimings& out) {
  if (!v.is_object()) return false;
  SweepTimings t;
  if (!read_double(v, "construction_seconds", t.construction_seconds) ||
      !read_double(v, "pair_draw_seconds", t.pair_draw_seconds) ||
      !read_double(v, "oracle_seconds", t.oracle_seconds) ||
      !read_double(v, "routing_seconds", t.routing_seconds) ||
      !read_uint(v, "oracle_bfs_searches", t.bfs_searches) ||
      !read_uint(v, "oracle_dijkstra_searches", t.dijkstra_searches) ||
      !read_uint(v, "pairs_requested", t.pairs_requested) ||
      !read_uint(v, "pairs_routed", t.pairs_routed)) {
    return false;
  }
  out = t;
  return true;
}

// ------------------------------------------------------------ slice files

namespace {
constexpr int kShardFormatVersion = 1;
}  // namespace

SweepSlice make_slice(const SweepConfig& config, int slice_index,
                      int slice_count, std::vector<SliceCell> cells) {
  SweepSlice slice;
  slice.model_tag = deploy_model_tag(config.model);
  slice.node_counts = config.node_counts;
  slice.networks_per_point = config.networks_per_point;
  slice.pairs_per_network = config.pairs_per_network;
  slice.base_seed = config.base_seed;
  for (const auto& spec : config.schemes) {
    slice.scheme_labels.push_back(spec.display_label());
  }
  slice.slice_index = slice_index;
  slice.slice_count = slice_count;
  slice.cells = std::move(cells);
  return slice;
}

void to_json(JsonWriter& w, const SweepSlice& slice) {
  w.begin_object();
  w.key("spr_shard").value(kShardFormatVersion);
  w.key("model").value(slice.model_tag);
  w.key("node_counts").begin_array();
  for (int n : slice.node_counts) w.value(n);
  w.end_array();
  w.key("networks_per_point").value(slice.networks_per_point);
  w.key("pairs_per_network").value(slice.pairs_per_network);
  w.key("base_seed").value(slice.base_seed);
  w.key("schemes").begin_array();
  for (const auto& label : slice.scheme_labels) w.value(label);
  w.end_array();
  w.key("shard_index").value(slice.slice_index);
  w.key("shard_count").value(slice.slice_count);
  w.key("cells").begin_array();
  for (const auto& cell : slice.cells) {
    w.begin_object();
    w.key("node_count").value(cell.node_count);
    w.key("net_index").value(cell.net_index);
    w.key("results");
    to_json(w, cell.result);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

bool from_json(const JsonValue& v, SweepSlice& out) {
  if (!v.is_object()) return false;
  int version = 0;
  if (!read_int(v, "spr_shard", version) || version != kShardFormatVersion) {
    return false;
  }
  SweepSlice slice;
  const JsonValue* model = v.find("model");
  if (model == nullptr || !model->is_string()) return false;
  slice.model_tag = model->as_string();
  DeployModel parsed_model;
  if (!deploy_model_from_tag(slice.model_tag, parsed_model)) return false;

  const JsonValue* counts = v.find("node_counts");
  if (counts == nullptr || !counts->is_array()) return false;
  for (const JsonValue& n : counts->items()) {
    std::int64_t count = n.is_integer() ? n.as_int64(INT64_MIN) : INT64_MIN;
    if (count < 0 || count > INT32_MAX) return false;
    slice.node_counts.push_back(static_cast<int>(count));
  }
  if (!read_int(v, "networks_per_point", slice.networks_per_point) ||
      !read_int(v, "pairs_per_network", slice.pairs_per_network) ||
      !read_uint(v, "base_seed", slice.base_seed) ||
      !read_int(v, "shard_index", slice.slice_index) ||
      !read_int(v, "shard_count", slice.slice_count)) {
    return false;
  }
  const JsonValue* schemes = v.find("schemes");
  if (schemes == nullptr || !schemes->is_array()) return false;
  for (const JsonValue& label : schemes->items()) {
    if (!label.is_string()) return false;
    slice.scheme_labels.push_back(label.as_string());
  }
  const JsonValue* cells = v.find("cells");
  if (cells == nullptr || !cells->is_array()) return false;
  for (const JsonValue& c : cells->items()) {
    SliceCell cell;
    if (!read_int(c, "node_count", cell.node_count) ||
        !read_int(c, "net_index", cell.net_index) ||
        !from_json(c.get("results"), cell.result)) {
      return false;
    }
    slice.cells.push_back(std::move(cell));
  }
  out = std::move(slice);
  return true;
}

namespace {

bool same_sweep(const SweepSlice& a, const SweepSlice& b) {
  return a.model_tag == b.model_tag && a.node_counts == b.node_counts &&
         a.networks_per_point == b.networks_per_point &&
         a.pairs_per_network == b.pairs_per_network &&
         a.base_seed == b.base_seed && a.scheme_labels == b.scheme_labels;
}

bool merge_fail(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

}  // namespace

bool merge_slices(std::vector<SweepSlice> slices,
                  std::vector<SweepPoint>& out_points, std::string* error) {
  if (slices.empty()) return merge_fail(error, "no slices to merge");
  const SweepSlice& head = slices.front();
  for (std::size_t i = 1; i < slices.size(); ++i) {
    if (!same_sweep(head, slices[i])) {
      return merge_fail(error,
                        "slice " + std::to_string(i) +
                            " belongs to a different sweep (config mismatch)");
    }
  }

  std::vector<SliceCell> cells;
  std::set<std::pair<int, int>> seen;
  for (const SweepSlice& slice : slices) {
    for (const SliceCell& cell : slice.cells) {
      if (std::find(head.node_counts.begin(), head.node_counts.end(),
                    cell.node_count) == head.node_counts.end()) {
        return merge_fail(error, "cell at unknown node count " +
                                     std::to_string(cell.node_count));
      }
      if (cell.net_index < 0 || cell.net_index >= head.networks_per_point) {
        return merge_fail(error, "cell net_index " +
                                     std::to_string(cell.net_index) +
                                     " out of range");
      }
      if (!seen.emplace(cell.node_count, cell.net_index).second) {
        return merge_fail(error,
                          "duplicate cell (" + std::to_string(cell.node_count) +
                              ", " + std::to_string(cell.net_index) + ")");
      }
      // Every cell must carry exactly the sweep's scheme set — a missing or
      // extra label means a truncated/foreign slice, and merge_cell_results
      // would silently skip it, corrupting the bit-identical guarantee.
      if (cell.result.size() != head.scheme_labels.size()) {
        return merge_fail(error,
                          "cell (" + std::to_string(cell.node_count) + ", " +
                              std::to_string(cell.net_index) + ") has " +
                              std::to_string(cell.result.size()) +
                              " scheme results, expected " +
                              std::to_string(head.scheme_labels.size()));
      }
      for (const auto& label : head.scheme_labels) {
        if (cell.result.find(label) == cell.result.end()) {
          return merge_fail(error, "cell (" +
                                       std::to_string(cell.node_count) + ", " +
                                       std::to_string(cell.net_index) +
                                       ") is missing scheme '" + label + "'");
        }
      }
      cells.push_back(cell);
    }
  }
  std::size_t expected = head.node_counts.size() *
                         static_cast<std::size_t>(head.networks_per_point);
  if (cells.size() != expected) {
    return merge_fail(error, "incomplete sweep: " +
                                 std::to_string(cells.size()) + " of " +
                                 std::to_string(expected) + " cells present");
  }
  out_points = merge_cell_results(head.node_counts, head.scheme_labels,
                                  std::move(cells));
  return true;
}

}  // namespace spr
