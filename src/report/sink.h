#pragma once

/// \file sink.h
/// ReportSink: pluggable backends that render one ScenarioReport. Sinks
/// are composable — a runner holds a list and emits the same report
/// through each, so one run can produce the console tables, the JSON
/// artifact, CSV exports and an SVG plot together:
///
///   ConsoleSink console;
///   JsonSink json("fig6.json");
///   console.emit(report);
///   json.emit(report);
///
/// ConsoleSink reproduces the pre-report printf output byte-for-byte (the
/// scenarios' text blocks carry the exact bytes; tables render through
/// Table::render as before).

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "report/report.h"

namespace spr {

/// One output backend for scenario reports.
class ReportSink {
 public:
  virtual ~ReportSink() = default;

  /// Renders `report`; returns false on I/O failure.
  virtual bool emit(const ScenarioReport& report) = 0;

  /// Short backend name ("console", "json", "csv", "svg").
  virtual const char* name() const noexcept = 0;

  /// The destination shown in error messages; empty for the console.
  virtual std::string destination() const { return {}; }
};

/// Prints the report's console stream (text blocks + rendered tables) to a
/// stdio stream, byte-identical to the printf-based scenarios this layer
/// replaced.
class ConsoleSink final : public ReportSink {
 public:
  explicit ConsoleSink(std::FILE* out = stdout) : out_(out) {}
  bool emit(const ScenarioReport& report) override;
  const char* name() const noexcept override { return "console"; }

 private:
  std::FILE* out_;
};

/// Writes the machine-readable JSON report (scenario, params, timings,
/// sweep sections under "models", notes).
class JsonSink final : public ReportSink {
 public:
  explicit JsonSink(std::string path) : path_(std::move(path)) {}
  bool emit(const ScenarioReport& report) override;
  const char* name() const noexcept override { return "json"; }
  std::string destination() const override { return path_; }

  /// The document text a report renders to (what emit() writes).
  static std::string render(const ScenarioReport& report);

 private:
  std::string path_;
};

/// Writes each report table as CSV with RFC-4180 quoting (LF row endings).
/// A single table goes to the configured path verbatim; with N > 1 tables,
/// table k goes to `<stem>-<k><ext>` (1-based, in report order).
class CsvSink final : public ReportSink {
 public:
  explicit CsvSink(std::string path) : path_(std::move(path)) {}
  bool emit(const ScenarioReport& report) override;
  const char* name() const noexcept override { return "csv"; }
  std::string destination() const override { return path_; }

  /// The file that table `index` of `table_count` lands in.
  static std::string table_path(const std::string& base, std::size_t index,
                                std::size_t table_count);

 private:
  std::string path_;
};

/// Renders the report's curves (one panel per curve, one polyline per
/// series, shared legend) as a standalone SVG. A report without curves
/// produces a small placeholder document so the artifact always exists.
class SvgSink final : public ReportSink {
 public:
  explicit SvgSink(std::string path) : path_(std::move(path)) {}
  bool emit(const ScenarioReport& report) override;
  const char* name() const noexcept override { return "svg"; }
  std::string destination() const override { return path_; }

  /// The document text a report renders to (what emit() writes).
  static std::string render(const ScenarioReport& report);

 private:
  std::string path_;
};

/// The selectable backends (`--format console,json,csv,svg`).
enum class ReportFormat { kConsole, kJson, kCsv, kSvg };

/// Parses a comma-separated format list ("console,json"). Duplicates are
/// collapsed; false (with a message in `error`) on an unknown name.
bool parse_report_formats(std::string_view list,
                          std::vector<ReportFormat>& out,
                          std::string* error = nullptr);

}  // namespace spr
