#pragma once

/// \file report.h
/// ScenarioReport: the structured result a scenario builds instead of
/// printing. The report separates computation from presentation — a
/// scenario records console blocks (text + tables, in print order),
/// machine-readable params, sweep sections, timings, plot curves and
/// notes; pluggable ReportSink backends (sink.h) then render the same
/// report as console text, JSON, CSV or SVG.
///
///   ScenarioReport report;
///   report.scenario = "fig6-avg-hops";
///   report.textf("== Fig. 6 ==\n\n");
///   report.add_table(std::move(table));
///   report.add_sweep(config, points, wall_seconds);
///   // runner: for (auto& sink : sinks) sink->emit(report);

#include <cstdarg>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.h"
#include "stats/table.h"
#include "util/json.h"

namespace spr {

/// One titled table. The title is presentation metadata for CSV/JSON
/// consumers; the console stream prints titles as ordinary text blocks, so
/// an empty title is common.
struct ReportTable {
  std::string title;
  Table table;
};

/// One sweep's points under the configuration identity that produced them
/// — the element shape of the JSON report's "models" array.
struct SweepSection {
  DeployModel model = DeployModel::kIdeal;
  int networks_per_point = 0;
  int pairs_per_network = 0;
  std::uint64_t base_seed = 0;
  int threads = 0;
  double wall_seconds = 0.0;
  std::vector<SweepPoint> points;
};

/// One plotted series: (x, y) samples under a legend label.
struct ReportSeries {
  std::string label;
  std::vector<std::pair<double, double>> points;
};

/// One sweep curve for plot sinks (SvgSink renders one panel per curve).
struct ReportCurve {
  std::string title;
  std::string x_label;
  std::string y_label;
  std::vector<ReportSeries> series;
};

/// The typed result of one scenario run.
struct ScenarioReport {
  /// One element of the console stream: verbatim text, or a reference into
  /// `tables` (rendered with Table::render at emit time).
  struct Block {
    enum class Kind { kText, kTable };
    Kind kind = Kind::kText;
    std::string text;
    std::size_t table_index = 0;
  };

  std::string scenario;                ///< registered scenario name
  std::vector<Block> blocks;           ///< console stream, in print order
  std::vector<ReportTable> tables;     ///< every table, in insertion order
  std::vector<JsonValue::Member> params;  ///< ordered JSON payload
  std::vector<std::pair<std::string, SweepTimings>> timings;  ///< named
  std::vector<SweepSection> sweeps;    ///< JSON "models" array
  std::vector<ReportCurve> curves;     ///< plot-sink input
  std::vector<std::string> notes;      ///< trailing informational lines
  /// Set by a scenario that bailed out before producing its result (e.g.
  /// no routable pair): the console blocks still print, but structured
  /// sinks skip the incomplete report.
  bool aborted = false;

  /// Appends a verbatim text block (may span multiple lines).
  void text(std::string content);
  /// printf-style text block; the console stream reproduces the bytes
  /// printf would have produced.
  void textf(const char* format, ...) __attribute__((format(printf, 2, 3)));
  /// Appends a table to both the console stream and the table list.
  void add_table(Table table, std::string title = {});
  /// Appends an ordered machine-readable param.
  void param(std::string key, JsonValue value);
  /// Appends a named timings breakdown.
  void add_timings(std::string key, const SweepTimings& t);
  /// Appends a sweep section from a finished run_sweep call.
  void add_sweep(const SweepConfig& config, std::vector<SweepPoint> points,
                 double wall_seconds);
  /// Records `line` as a note and prints it (plus '\n') on the console
  /// stream.
  void note(std::string line);
};

/// "IA" / "FA" — the short model tag used by JSON reports and shard files.
const char* deploy_model_tag(DeployModel model) noexcept;
/// Inverse of deploy_model_tag; false when the tag is unknown.
bool deploy_model_from_tag(std::string_view tag, DeployModel& model) noexcept;

}  // namespace spr
