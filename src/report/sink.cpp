#include "report/sink.h"

#include <algorithm>
#include <cmath>

#include "report/serialize.h"
#include "stats/table.h"
#include "util/suggest.h"
#include "util/svg.h"

namespace spr {

// ---------------------------------------------------------------- console

bool ConsoleSink::emit(const ScenarioReport& report) {
  for (const auto& block : report.blocks) {
    if (block.kind == ScenarioReport::Block::Kind::kText) {
      if (std::fputs(block.text.c_str(), out_) == EOF) return false;
    } else if (block.table_index < report.tables.size()) {
      const std::string rendered =
          report.tables[block.table_index].table.render();
      if (std::fputs(rendered.c_str(), out_) == EOF) return false;
    }
  }
  return std::fflush(out_) != EOF;
}

// ------------------------------------------------------------------- json

namespace {

JsonWriter build_json_document(const ScenarioReport& report) {
  JsonWriter w;
  w.begin_object();
  w.key("scenario").value(report.scenario);
  for (const auto& [key, value] : report.params) {
    w.key(key);
    value.write(w);
  }
  for (const auto& [key, t] : report.timings) {
    w.key(key);
    timings_to_json(w, t);
  }
  if (!report.sweeps.empty()) {
    w.key("models").begin_array();
    for (const auto& section : report.sweeps) {
      sweep_section_to_json(w, section);
    }
    w.end_array();
  }
  if (!report.notes.empty()) {
    w.key("notes").begin_array();
    for (const auto& note : report.notes) w.value(note);
    w.end_array();
  }
  w.end_object();
  return w;
}

}  // namespace

std::string JsonSink::render(const ScenarioReport& report) {
  return build_json_document(report).str();
}

bool JsonSink::emit(const ScenarioReport& report) {
  return build_json_document(report).write_file(path_);
}

// -------------------------------------------------------------------- csv

std::string CsvSink::table_path(const std::string& base, std::size_t index,
                                std::size_t table_count) {
  if (table_count <= 1) return base;
  std::size_t slash = base.find_last_of('/');
  std::size_t dot = base.find_last_of('.');
  // Built by append: the `"-" + std::to_string(...)` temporary-insert form
  // trips GCC 12's -Wrestrict false positive (PR105651) under -Werror.
  std::string suffix("-");
  suffix += std::to_string(index + 1);
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return base + suffix;
  }
  return base.substr(0, dot) + suffix + base.substr(dot);
}

bool CsvSink::emit(const ScenarioReport& report) {
  if (report.tables.empty()) {
    // Still create the artifact so pipelines see a (header-free) file.
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) return false;
    return std::fclose(f) == 0;
  }
  for (std::size_t i = 0; i < report.tables.size(); ++i) {
    std::string path = table_path(path_, i, report.tables.size());
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::string csv = report.tables[i].table.to_csv();
    bool ok = std::fwrite(csv.data(), 1, csv.size(), f) == csv.size();
    ok = std::fclose(f) == 0 && ok;
    if (!ok) return false;
  }
  return true;
}

// -------------------------------------------------------------------- svg

namespace {

const char* kSeriesPalette[] = {"#2980b9", "#e67e22", "#27ae60", "#8e44ad",
                                "#c0392b", "#16a085", "#7f8c8d", "#f1c40f"};
constexpr std::size_t kPaletteSize =
    sizeof(kSeriesPalette) / sizeof(kSeriesPalette[0]);

constexpr double kPanelWidth = 640.0;
constexpr double kPanelHeight = 400.0;
constexpr double kPanelGap = 30.0;
constexpr double kMarginLeft = 78.0;
constexpr double kMarginRight = 24.0;
constexpr double kMarginTop = 46.0;
constexpr double kMarginBottom = 52.0;

std::string tick_label(double value) {
  double magnitude = std::fabs(value);
  int digits = magnitude >= 100.0 ? 0 : magnitude >= 10.0 ? 1 : 2;
  return Table::fmt(value, digits);
}

/// Draws one curve into the panel whose *bottom-left* world corner is
/// (0, panel_bottom).
void draw_curve(SvgCanvas& svg, const ReportCurve& curve,
                double panel_bottom) {
  double plot_left = kMarginLeft;
  double plot_right = kPanelWidth - kMarginRight;
  double plot_bottom = panel_bottom + kMarginBottom;
  double plot_top = panel_bottom + kPanelHeight - kMarginTop;

  // Data range over every series; degenerate ranges get a unit pad.
  double x_min = 0.0, x_max = 0.0, y_min = 0.0, y_max = 0.0;
  bool any = false;
  for (const auto& series : curve.series) {
    for (auto [x, y] : series.points) {
      if (!any) {
        x_min = x_max = x;
        y_min = y_max = y;
        any = true;
      } else {
        x_min = std::min(x_min, x);
        x_max = std::max(x_max, x);
        y_min = std::min(y_min, y);
        y_max = std::max(y_max, y);
      }
    }
  }
  if (!any) {
    svg.text({plot_left, (plot_bottom + plot_top) / 2.0}, "(no data)", 14.0,
             "#7f8c8d");
    return;
  }
  if (y_min > 0.0) y_min = 0.0;  // anchor magnitude axes at zero
  if (x_max - x_min < 1e-12) x_max = x_min + 1.0;
  if (y_max - y_min < 1e-12) y_max = y_min + 1.0;

  auto map_x = [&](double x) {
    return plot_left + (x - x_min) / (x_max - x_min) * (plot_right - plot_left);
  };
  auto map_y = [&](double y) {
    return plot_bottom +
           (y - y_min) / (y_max - y_min) * (plot_top - plot_bottom);
  };

  // Frame + title.
  svg.rect(Rect::from_corners({plot_left, plot_bottom}, {plot_right, plot_top}),
           "none", "#2c3e50", 1.2, 1.0);
  svg.text({plot_left, plot_top + 14.0}, curve.title, 15.0, "#2c3e50");

  // Axis ticks: min / mid / max on both axes.
  for (double f : {0.0, 0.5, 1.0}) {
    double x = x_min + f * (x_max - x_min);
    double px = map_x(x);
    svg.line({px, plot_bottom}, {px, plot_bottom - 5.0}, "#2c3e50", 1.0);
    svg.text({px - 12.0, plot_bottom - 20.0}, tick_label(x), 11.0, "#2c3e50");
    double y = y_min + f * (y_max - y_min);
    double py = map_y(y);
    svg.line({plot_left, py}, {plot_left - 5.0, py}, "#2c3e50", 1.0);
    svg.text({plot_left - 46.0, py - 4.0}, tick_label(y), 11.0, "#2c3e50");
  }
  svg.text({(plot_left + plot_right) / 2.0 - 24.0, plot_bottom - 38.0},
           curve.x_label, 12.0, "#2c3e50");
  svg.text({6.0, plot_top + 14.0}, curve.y_label, 12.0, "#2c3e50");

  // Series polylines + markers + legend.
  double legend_x = plot_left + 10.0;
  double legend_y = plot_top - 16.0;
  for (std::size_t si = 0; si < curve.series.size(); ++si) {
    const auto& series = curve.series[si];
    const char* color = kSeriesPalette[si % kPaletteSize];
    std::vector<Vec2> pts;
    pts.reserve(series.points.size());
    for (auto [x, y] : series.points) pts.push_back({map_x(x), map_y(y)});
    if (pts.size() > 1) svg.polyline(pts, color, 2.0, 0.95);
    for (Vec2 p : pts) svg.circle(p, 3.0, color);
    svg.line({legend_x, legend_y + 4.0}, {legend_x + 22.0, legend_y + 4.0},
             color, 2.5);
    svg.text({legend_x + 28.0, legend_y}, series.label, 11.0, "#2c3e50");
    legend_y -= 16.0;
  }
}

}  // namespace

std::string SvgSink::render(const ScenarioReport& report) {
  std::size_t panels = std::max<std::size_t>(report.curves.size(), 1);
  double height = static_cast<double>(panels) * kPanelHeight +
                  static_cast<double>(panels - 1) * kPanelGap;
  SvgCanvas svg(Rect::from_corners({0.0, 0.0}, {kPanelWidth, height}), 1.0);
  if (report.curves.empty()) {
    svg.text({kMarginLeft, height / 2.0},
             "scenario '" + report.scenario + "': no sweep curves", 14.0,
             "#7f8c8d");
    return svg.render();
  }
  for (std::size_t ci = 0; ci < report.curves.size(); ++ci) {
    // First curve on top: panel k's bottom edge, counted from the top.
    double panel_bottom = (static_cast<double>(report.curves.size() - 1 - ci)) *
                          (kPanelHeight + kPanelGap);
    draw_curve(svg, report.curves[ci], panel_bottom);
  }
  return svg.render();
}

bool SvgSink::emit(const ScenarioReport& report) {
  std::string document = render(report);
  std::FILE* f = std::fopen(path_.c_str(), "w");
  if (f == nullptr) return false;
  bool ok = std::fwrite(document.data(), 1, document.size(), f) ==
            document.size();
  ok = std::fclose(f) == 0 && ok;
  return ok;
}

// ----------------------------------------------------------------- format

bool parse_report_formats(std::string_view list,
                          std::vector<ReportFormat>& out,
                          std::string* error) {
  std::vector<ReportFormat> formats;
  std::size_t pos = 0;
  while (pos <= list.size()) {
    std::size_t comma = list.find(',', pos);
    std::string_view token = list.substr(
        pos, comma == std::string_view::npos ? list.size() - pos
                                             : comma - pos);
    // Trim surrounding spaces.
    while (!token.empty() && token.front() == ' ') token.remove_prefix(1);
    while (!token.empty() && token.back() == ' ') token.remove_suffix(1);
    if (!token.empty()) {
      ReportFormat format;
      if (token == "console") format = ReportFormat::kConsole;
      else if (token == "json") format = ReportFormat::kJson;
      else if (token == "csv") format = ReportFormat::kCsv;
      else if (token == "svg") format = ReportFormat::kSvg;
      else {
        if (error != nullptr) {
          // Same "did you mean" machinery as unknown scenario names.
          static const std::vector<std::string> kNames = {"console", "json",
                                                          "csv", "svg"};
          *error = "unknown report format '" + std::string(token) +
                   "' (expected console, json, csv or svg)";
          auto close = near_matches(token, kNames);
          if (!close.empty()) {
            *error += "; did you mean '" + close.front() + "'?";
          }
        }
        return false;
      }
      if (std::find(formats.begin(), formats.end(), format) == formats.end()) {
        formats.push_back(format);
      }
    }
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
  out = std::move(formats);
  return true;
}

}  // namespace spr
