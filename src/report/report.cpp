#include "report/report.h"

#include <cstdio>

namespace spr {

void ScenarioReport::text(std::string content) {
  blocks.push_back({Block::Kind::kText, std::move(content), 0});
}

void ScenarioReport::textf(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list measure;
  va_copy(measure, args);
  int needed = std::vsnprintf(nullptr, 0, format, measure);
  va_end(measure);
  std::string out;
  if (needed > 0) {
    // One extra slot for vsnprintf's terminator, dropped after the write.
    out.resize(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), format, args);
    out.pop_back();
  }
  va_end(args);
  text(std::move(out));
}

void ScenarioReport::add_table(Table table, std::string title) {
  blocks.push_back({Block::Kind::kTable, {}, tables.size()});
  tables.push_back({std::move(title), std::move(table)});
}

void ScenarioReport::param(std::string key, JsonValue value) {
  params.emplace_back(std::move(key), std::move(value));
}

void ScenarioReport::add_timings(std::string key, const SweepTimings& t) {
  timings.emplace_back(std::move(key), t);
}

void ScenarioReport::add_sweep(const SweepConfig& config,
                               std::vector<SweepPoint> points,
                               double wall_seconds) {
  SweepSection section;
  section.model = config.model;
  section.networks_per_point = config.networks_per_point;
  section.pairs_per_network = config.pairs_per_network;
  section.base_seed = config.base_seed;
  section.threads = config.threads;
  section.wall_seconds = wall_seconds;
  section.points = std::move(points);
  sweeps.push_back(std::move(section));
}

void ScenarioReport::note(std::string line) {
  text(line + "\n");
  notes.push_back(std::move(line));
}

const char* deploy_model_tag(DeployModel model) noexcept {
  return model == DeployModel::kIdeal ? "IA" : "FA";
}

bool deploy_model_from_tag(std::string_view tag, DeployModel& model) noexcept {
  if (tag == "IA") {
    model = DeployModel::kIdeal;
    return true;
  }
  if (tag == "FA") {
    model = DeployModel::kForbiddenAreas;
    return true;
  }
  return false;
}

}  // namespace spr
