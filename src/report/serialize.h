#pragma once

/// \file serialize.h
/// JSON round-trip for the sweep result model. Two forms coexist:
///
/// - *Stats* form (`summary_stats_to_json` / `aggregate_stats_to_json`):
///   the compact derived-moments shape the scenario reports have always
///   emitted (count/mean/min/max/stddev). Lossy — for human and dashboard
///   consumption.
/// - *Full* form (`to_json` / `from_json`): retains every Summary sample,
///   so deserializing re-adds the samples in order and reconstructs the
///   accumulator bit-identically. This is what makes the sweep cell the
///   unit of cross-process distribution: run slices anywhere, serialize
///   their `CellResult`s, and `merge_slices` reproduces the in-process
///   `run_sweep` aggregates exactly.
///
/// Doubles are emitted with %.17g and parsed with from_chars, so every
/// finite double survives the trip bit-exactly.

#include <string>
#include <vector>

#include "core/experiment.h"
#include "report/report.h"
#include "sim/stream_sim.h"
#include "stats/summary.h"
#include "util/json.h"

namespace spr {

// ------------------------------------------------------------ stats form
/// {count, mean, min, max, stddev} — the report shape.
void summary_stats_to_json(JsonWriter& w, const Summary& s);
JsonValue summary_stats(const Summary& s);
/// The per-aggregate report shape (delivery ratio + stats summaries).
void aggregate_stats_to_json(JsonWriter& w, const RouteAggregate& agg);
/// One sweep section in the report shape (the "models" array element).
void sweep_section_to_json(JsonWriter& w, const SweepSection& section);
void timings_to_json(JsonWriter& w, const SweepTimings& t);

// ------------------------------------------------------------- full form
/// {"values": [...]} — everything needed to rebuild the accumulator.
void to_json(JsonWriter& w, const Summary& s);
bool from_json(const JsonValue& v, Summary& out);

void to_json(JsonWriter& w, const RouteAggregate& agg);
bool from_json(const JsonValue& v, RouteAggregate& out);

/// {"nodes": n, "schemes": {label: aggregate...}}
void to_json(JsonWriter& w, const SweepPoint& point);
bool from_json(const JsonValue& v, SweepPoint& out);

/// {label: aggregate...}
void to_json(JsonWriter& w, const CellResult& cell);
bool from_json(const JsonValue& v, CellResult& out);

void to_json(JsonWriter& w, const SweepTimings& t);
bool from_json(const JsonValue& v, SweepTimings& out);

// --------------------------------------------------------- stream results
/// Stats form of one StreamSim run (the streaming-delivery scenario's
/// report shape): per-scheme delivery/hops/stretch/latency summaries plus
/// the per-wave incremental-relabeling records. The JsonValue form is the
/// same document as a DOM — what report params and the example exports
/// embed directly.
JsonValue stream_stats_json(const StreamStats& stats);
void stream_stats_to_json(JsonWriter& w, const StreamStats& stats);

/// Full (sample-retaining) forms: a deserialized StreamStats reconstructs
/// every Summary accumulator bit-identically, like the sweep cell forms.
void to_json(JsonWriter& w, const IncrementalStats& stats);
bool from_json(const JsonValue& v, IncrementalStats& out);

void to_json(JsonWriter& w, const WaveRecord& record);
bool from_json(const JsonValue& v, WaveRecord& out);

void to_json(JsonWriter& w, const RepinRecord& record);
bool from_json(const JsonValue& v, RepinRecord& out);

void to_json(JsonWriter& w, const StreamSchemeStats& stats);
bool from_json(const JsonValue& v, StreamSchemeStats& out);

void to_json(JsonWriter& w, const StreamStats& stats);
bool from_json(const JsonValue& v, StreamStats& out);

// ------------------------------------------------------------ slice files
/// A serialized sweep *slice*: the sweep's identity (enough to check that
/// two slices came from the same sweep) plus the computed cells in full
/// form. ("Slice" = a modular subset of a sweep's cells for cross-process
/// distribution — distinct from the *spatial tiles* of shard/, which
/// partition one deployment's field. The JSON wire keys keep the historical
/// "shard" spelling for compatibility.)
struct SweepSlice {
  std::string model_tag;  ///< "IA" / "FA"
  std::vector<int> node_counts;
  int networks_per_point = 0;
  int pairs_per_network = 0;
  std::uint64_t base_seed = 0;
  std::vector<std::string> scheme_labels;
  int slice_index = 0;
  int slice_count = 1;
  std::vector<SliceCell> cells;
};

/// Builds the slice header from the config that ran the cells.
SweepSlice make_slice(const SweepConfig& config, int slice_index,
                      int slice_count, std::vector<SliceCell> cells);

void to_json(JsonWriter& w, const SweepSlice& slice);
bool from_json(const JsonValue& v, SweepSlice& out);

/// Merges slice files into sweep points. Validates that every slice
/// belongs to the same sweep (identical header identity), that no cell
/// appears twice, and that the union covers every cell of the sweep —
/// then replays run_sweep's canonical cell-order reduction, so the result
/// is bit-identical to the in-process sweep. On failure returns false and
/// describes the problem in `error` (when non-null).
bool merge_slices(std::vector<SweepSlice> slices,
                  std::vector<SweepPoint>& out_points,
                  std::string* error = nullptr);

}  // namespace spr
