#pragma once

/// \file tiling.h
/// Rectangular spatial tiling of a deployment field — the geometry layer of
/// the sharded network (shard/sharded_network.h).
///
/// The field rect splits into `rows x cols` equal tiles. Every node has
/// exactly one *owner* tile (the tile whose rect contains its position;
/// boundary points resolve by clamped floor indexing, so ownership is a
/// deterministic partition). A tile additionally *replicates* as ghosts all
/// nodes within `halo` of its rect: with `halo >= radio range`, every owned
/// node's full unit-disk neighborhood is present locally, so a shard can
/// evaluate Definition 1 for its owned nodes without remote reads. The halo
/// carries extra slack beyond the range (see `Config::halo_slack`) so that
/// bounded node drift between re-partitions cannot pull a neighbor outside
/// the replica set — the fast-path condition mobility epochs check.
///
/// `tiles_containing` uses the *closed* expanded-rect condition
/// (distance(p, tile rect) <= halo), and the same predicate decides ghost
/// membership at partition build and message routing afterwards, so the two
/// can never disagree.

#include <vector>

#include "geometry/rect.h"
#include "geometry/vec2.h"

namespace spr {

class Tiling {
 public:
  Tiling() = default;

  /// `rows`/`cols` >= 1; `halo` >= 0 (meters).
  Tiling(Rect field, int rows, int cols, double halo);

  int rows() const noexcept { return rows_; }
  int cols() const noexcept { return cols_; }
  int tile_count() const noexcept { return rows_ * cols_; }
  double halo() const noexcept { return halo_; }
  Rect field() const noexcept { return field_; }

  /// The tile rect of tile `index` (row-major: index = row * cols + col).
  Rect tile_rect(int index) const noexcept;

  /// The unique owner tile of `p`: clamped floor indexing, so points outside
  /// the field snap to the nearest border tile and boundary points resolve
  /// deterministically to the higher-index side.
  int owner_tile(Vec2 p) const noexcept;

  /// Appends (ascending) every tile whose rect lies within `halo` of `p` —
  /// the tiles that replicate a node at `p` (owner included). At most 4
  /// tiles unless the halo exceeds a tile dimension.
  void tiles_containing(Vec2 p, std::vector<int>& out) const;

 private:
  Rect field_;
  int rows_ = 1;
  int cols_ = 1;
  double halo_ = 0.0;
  double tile_w_ = 0.0;
  double tile_h_ = 0.0;
};

}  // namespace spr
