#pragma once

/// \file sharded_network.h
/// Spatial tile sharding of a deployment: million-node fields as a grid of
/// rectangular tiles, each owning its own SpatialGrid / UnitDiskGraph /
/// QuadrantZones / FlatLabeler shard over *local* ids, glued back into the
/// global address space by LID<->GID maps (the owner/ghost structure of the
/// Galois edge-cut exemplar, specialized to geometry).
///
/// **Tiles and halos.** Every node is owned by exactly one tile (the tile
/// rect containing it at partition build). A tile also replicates, as
/// *ghosts*, every node within `halo` of its rect, where halo = radio range
/// + slack: an owned node's complete unit-disk neighborhood is then local,
/// so Definition 1's flip test for owned nodes never needs a remote read.
/// Ghost rows are intentionally partial (only locally-present neighbors) —
/// ghosts are never *evaluated* locally, they only contribute their status
/// bits, which the owning tile keeps authoritative.
///
/// **Halo-synced labeling.** `safety()` runs the labeling fixpoint as
/// tile-local worklists on the TaskPool with barrier-synchronized frontier
/// exchange: each round, every tile applies its inbox of cross-halo
/// demotion keys (mirror the ghost bit, re-enqueue local observers), drains
/// its own worklist, and the owned flips route to every other tile
/// replicating that node; rounds repeat until no tile flips and no key
/// crosses. Stale ghost bits are always an *over*-approximation (bits only
/// fall, mirrors only lag), so a local flip justified against inflated
/// ghost bits is justified globally — the exchange terminates in exactly
/// the global greatest fixpoint. Promotions (mobility) run the same way in
/// reverse first: cluster re-raises forward their crossing keys to the
/// neighbor's owner until quiescence, then every raised replica syncs up
/// before the demotion rounds start. The incremental updaters
/// (`apply_failures` / `apply_moves`) stay shard-local unless the worklist
/// frontier actually crosses a halo — a localized wave never wakes distant
/// tiles.
///
/// **Invariance contract.** Statuses AND anchors are bit-identical to the
/// single-shard `compute_safety` / `update_safety_after_*` results for
/// every tile grid and thread count (the anchor pass of Algorithm 2 chains
/// first/last greedy paths across tile borders, so it runs over the glued
/// global graph — identical inputs, identical code path). Property tests
/// assert equality across {1x1, 2x2, 4x4} grids, seeds, staged failure
/// waves and mobility epochs.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/network.h"
#include "deploy/interest_area.h"
#include "graph/unit_disk.h"
#include "safety/flat_kernel.h"
#include "safety/incremental.h"
#include "safety/labeling.h"
#include "shard/tiling.h"
#include "util/arena.h"

namespace spr {

class TaskPool;

/// What one sharded labeling epoch (compute or incremental update) did.
struct ShardStats {
  std::size_t exchange_rounds = 0;  ///< barrier rounds of the demotion loop
  std::size_t halo_demotions = 0;   ///< demotion keys mirrored across halos
  std::size_t halo_raises = 0;      ///< promotion sources forwarded to owners
  std::size_t repartitions = 0;     ///< 1 when this epoch rebuilt the tiling
  IncrementalStats incremental;     ///< aggregate kernel counters
};

/// A deployment partitioned into spatial tiles with halo-synced safety
/// labeling. Owns the glued global graph/area (routing, anchors and
/// serialization address global ids) plus one shard per tile.
class ShardedNetwork {
 public:
  struct Config {
    int tile_rows = 2;
    int tile_cols = 2;
    /// Extra halo width beyond the radio range (meters); negative = one
    /// radio range. Mobility epochs whose cumulative drift since the last
    /// partition build stays within half the slack keep the tiling (tiles
    /// patch their local graphs incrementally); larger drift re-partitions
    /// from current positions.
    double halo_slack = -1.0;
  };

  /// Partitions an existing global graph. The graph is copied (cheap CSR
  /// copy; the spatial grid and quadrant cache are shared). `edge_band` is
  /// the interest-area band (negative = one radio range), matching
  /// NetworkConfig semantics. `pool` parallelizes per-tile work across
  /// epochs and must outlive this object; results are bit-identical for
  /// every thread count.
  ShardedNetwork(const UnitDiskGraph& global, double edge_band, Config config,
                 TaskPool* pool = nullptr);

  /// Draws a deployment (as Network::create) and partitions it.
  static ShardedNetwork create(const NetworkConfig& net_config, Config config);

  const UnitDiskGraph& graph() const noexcept { return *global_; }
  const InterestArea& area() const noexcept { return *area_; }
  const Tiling& tiling() const noexcept { return tiling_; }
  double edge_band() const noexcept { return band_; }
  int tile_count() const noexcept { return tiling_.tile_count(); }

  /// Global ids replicated in tile `t`: owned ascending, then ghosts
  /// ascending. `tile_owned(t)` is the length of the owned prefix.
  std::span<const NodeId> tile_members(int t) const noexcept;
  std::size_t tile_owned(int t) const noexcept;

  /// The global safety labeling, computed by the halo exchange on first
  /// call — statuses and anchors bit-identical to
  /// `compute_safety(graph(), area())`.
  const SafetyInfo& safety();
  bool has_safety() const noexcept { return labeled_; }

  /// Stats of the most recent labeling epoch (compute or update).
  const ShardStats& last_stats() const noexcept { return stats_; }

  /// Marks `failed` dead everywhere they are replicated, patches each
  /// affected tile's graph/zones, and continues the labeling shard-locally
  /// — demotion keys cross halos only when the worklist frontier does.
  /// Equivalent to Network::with_failures + update_safety_after_failures
  /// (statuses and anchors; property tests assert equality). Forces the
  /// labeling if not yet built.
  void apply_failures(const std::vector<NodeId>& failed);

  /// Moves the whole node set to `positions` (size() entries): the global
  /// graph patches via with_moves, tiles patch locally while cumulative
  /// drift permits (else the partition rebuilds), and the labeling
  /// continues through the bidirectional promote/demote exchange.
  /// Equivalent to Network::with_moves + update_safety_after_moves.
  /// `diff`, when non-null, receives the global edge delta.
  void apply_moves(const std::vector<Vec2>& positions, EdgeDiff* diff = nullptr);

 private:
  struct Tile {
    std::vector<NodeId> gids;  ///< owned ascending, then ghosts ascending
    std::size_t owned = 0;
    std::unique_ptr<UnitDiskGraph> graph;  ///< local-id shard graph
    std::unique_ptr<InterestArea> area;    ///< global edge flags; ghosts pinned
    std::unique_ptr<Arena> arena;          ///< retained across epochs
    // Per-epoch exchange state.
    std::unique_ptr<FlatLabeler> labeler;
    std::size_t flip_cursor = 0;
    std::vector<std::uint32_t> inbox;        ///< local demotion keys to mirror
    std::vector<std::uint32_t> raise_inbox;  ///< local promotion flood sources
    std::vector<std::uint32_t> raised_out;   ///< scratch: last raise results

    /// Local id of `gid` (binary search of both segments); kInvalidNode when
    /// not replicated here.
    NodeId lid_of(NodeId gid) const noexcept;
  };

  void build_partition();
  void refresh_tile_area(Tile& tile) const;
  void begin_epoch(bool from_info);
  void route_tiles_of(NodeId gid, std::vector<int>& out) const;
  void demotion_exchange();
  void finish_epoch(const UnitDiskGraph& anchor_graph);

  Tiling tiling_;
  std::vector<Tile> tiles_;
  std::unique_ptr<UnitDiskGraph> global_;
  std::unique_ptr<InterestArea> area_;
  std::vector<Vec2> build_positions_;  ///< positions at partition build
  SafetyInfo info_;
  bool labeled_ = false;
  TaskPool* pool_ = nullptr;
  double band_ = 0.0;
  double slack_ = 0.0;
  ShardStats stats_;
};

}  // namespace spr
