#include "shard/sharded_network.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "graph/spatial_grid.h"
#include "util/check.h"
#include "util/task_pool.h"

namespace spr {

namespace {

void set_bit(std::uint64_t* bits, std::uint32_t i) {
  bits[i >> 6] |= 1ull << (i & 63);
}

bool test_bit(const std::uint64_t* bits, std::uint32_t i) {
  return (bits[i >> 6] >> (i & 63)) & 1u;
}

/// Calls fn(key) for every set bit, ascending.
template <typename Fn>
void for_each_key(const std::uint64_t* bits, std::size_t words, Fn&& fn) {
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t word = bits[w];
    while (word != 0) {
      const int b = std::countr_zero(word);
      word &= word - 1;
      fn(static_cast<std::uint32_t>(w * 64 + b));
    }
  }
}

}  // namespace

NodeId ShardedNetwork::Tile::lid_of(NodeId gid) const noexcept {
  const auto owned_end = gids.begin() + static_cast<std::ptrdiff_t>(owned);
  auto it = std::lower_bound(gids.begin(), owned_end, gid);
  if (it != owned_end && *it == gid) {
    return static_cast<NodeId>(it - gids.begin());
  }
  it = std::lower_bound(owned_end, gids.end(), gid);
  if (it != gids.end() && *it == gid) {
    return static_cast<NodeId>(it - gids.begin());
  }
  return kInvalidNode;
}

ShardedNetwork::ShardedNetwork(const UnitDiskGraph& global, double edge_band,
                               Config config, TaskPool* pool)
    : pool_(pool) {
  band_ = edge_band < 0.0 ? global.range() : edge_band;
  slack_ = config.halo_slack < 0.0 ? global.range() : config.halo_slack;
  global_ = std::make_unique<UnitDiskGraph>(global);
  area_ = std::make_unique<InterestArea>(*global_, band_);
  tiling_ = Tiling(global_->bounds(), config.tile_rows, config.tile_cols,
                   global_->range() + slack_);
  build_partition();
}

ShardedNetwork ShardedNetwork::create(const NetworkConfig& net_config,
                                      Config config) {
  Rng rng(net_config.seed);
  Deployment d = deploy(net_config.deployment, rng);
  UnitDiskGraph g(std::move(d.positions), d.radio_range, d.field,
                  net_config.build_pool);
  return ShardedNetwork(g, net_config.edge_band, config,
                        net_config.build_pool);
}

std::span<const NodeId> ShardedNetwork::tile_members(int t) const noexcept {
  const Tile& tile = tiles_[static_cast<std::size_t>(t)];
  return {tile.gids.data(), tile.gids.size()};
}

std::size_t ShardedNetwork::tile_owned(int t) const noexcept {
  return tiles_[static_cast<std::size_t>(t)].owned;
}

void ShardedNetwork::build_partition() {
  const std::size_t n = global_->size();
  build_positions_ = global_->positions();
  const int tile_total = tiling_.tile_count();
  tiles_.resize(static_cast<std::size_t>(tile_total));

  // Membership: every node joins its owner tile plus, as a ghost, every
  // other tile within halo of its position. The serial id-ascending scan
  // leaves both segments of every gid list sorted.
  std::vector<std::vector<NodeId>> owned_lists(tiles_.size());
  std::vector<std::vector<NodeId>> ghost_lists(tiles_.size());
  std::vector<int> touching;
  for (NodeId u = 0; u < n; ++u) {
    const Vec2 p = build_positions_[u];
    const int owner = tiling_.owner_tile(p);
    owned_lists[static_cast<std::size_t>(owner)].push_back(u);
    touching.clear();
    tiling_.tiles_containing(p, touching);
    for (const int t : touching) {
      if (t != owner) ghost_lists[static_cast<std::size_t>(t)].push_back(u);
    }
  }

  parallel_for_blocked(
      pool_, tiles_.size(), 1, [&](std::size_t lo, std::size_t hi) {
        std::vector<NodeId> row;
        for (std::size_t t = lo; t < hi; ++t) {
          Tile& tile = tiles_[t];
          tile.labeler.reset();  // references the graph replaced below
          tile.owned = owned_lists[t].size();
          tile.gids = std::move(owned_lists[t]);
          tile.gids.insert(tile.gids.end(), ghost_lists[t].begin(),
                           ghost_lists[t].end());
          const std::size_t m = tile.gids.size();

          std::vector<Vec2> pos(m);
          std::vector<bool> alive(m);
          for (std::size_t lid = 0; lid < m; ++lid) {
            pos[lid] = global_->position(tile.gids[lid]);
            alive[lid] = global_->alive(tile.gids[lid]);
          }

          // Local CSR = the induced subgraph on the replica set, rows
          // remapped to local ids (lid order is not gid order across the
          // owned/ghost boundary, so each mapped row re-sorts). Owned rows
          // are complete by the halo invariant; ghost rows keep whatever is
          // locally present — ghosts are never evaluated here.
          std::vector<std::size_t> offsets(m + 1, 0);
          std::vector<NodeId> adjacency;
          for (std::size_t lid = 0; lid < m; ++lid) {
            offsets[lid] = adjacency.size();
            row.clear();
            for (const NodeId v : global_->neighbors(tile.gids[lid])) {
              const NodeId vl = tile.lid_of(v);
              if (vl != kInvalidNode) row.push_back(vl);
            }
            std::sort(row.begin(), row.end());
            adjacency.insert(adjacency.end(), row.begin(), row.end());
          }
          offsets[m] = adjacency.size();

          // Local grid bounds cover every replica now and after slack-bounded
          // drift (grid indexing clamps, so stragglers stay correct anyway).
          const Rect local_bounds = tiling_.tile_rect(static_cast<int>(t))
                                        .inflated(tiling_.halo() + slack_);
          tile.graph = std::make_unique<UnitDiskGraph>(UnitDiskGraph::from_parts(
              std::move(pos), global_->range(), local_bounds, std::move(alive),
              std::move(offsets), std::move(adjacency)));
          tile.graph->zones(nullptr);
          refresh_tile_area(tile);
          if (!tile.arena) {
            tile.arena = std::make_unique<Arena>(std::size_t{1} << 20);
          }
        }
      });

  // LID<->GID bijectivity: both gid segments strictly ascending (lid_of's
  // binary searches depend on it) and lid_of inverting gids[] exactly. The
  // whole scan exists only to verify, so Release drops it entirely.
  if (kDchecksEnabled) {
    for (std::size_t t = 0; t < tiles_.size(); ++t) {
      const Tile& tile = tiles_[t];
      for (std::size_t lid = 0; lid < tile.gids.size(); ++lid) {
        const bool segment_start = lid == 0 || lid == tile.owned;
        SPR_DCHECK(segment_start || tile.gids[lid - 1] < tile.gids[lid],
                   "tile ", t, " gid segment not strictly ascending at lid ",
                   lid);
        SPR_DCHECK(tile.lid_of(tile.gids[lid]) == static_cast<NodeId>(lid),
                   "tile ", t, " lid_of(gids[", lid, "]) is not ", lid,
                   " for gid ", tile.gids[lid]);
      }
    }
  }
}

void ShardedNetwork::refresh_tile_area(Tile& tile) const {
  const std::size_t m = tile.gids.size();
  // Ghosts are pinned as edge nodes: ineligible, so the shard never
  // evaluates Definition 1 for a node whose neighborhood may be partial —
  // their status bits are mirrors of the owner's, nothing more.
  std::vector<bool> flags(m, true);
  for (std::size_t lid = 0; lid < tile.owned; ++lid) {
    flags[lid] = area_->is_edge_node(tile.gids[lid]);
  }
  tile.area = std::make_unique<InterestArea>(*tile.graph, std::move(flags),
                                             area_->hull());
}

void ShardedNetwork::begin_epoch(bool from_info) {
  parallel_for_blocked(
      pool_, tiles_.size(), 1, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t t = lo; t < hi; ++t) {
          Tile& tile = tiles_[t];
          tile.labeler.reset();  // its scratch lives in the arena reset below
          tile.arena->reset();
          tile.labeler = std::make_unique<FlatLabeler>(
              *tile.graph, tile.area.get(), *tile.arena);
          tile.labeler->start_all_safe();
          if (from_info) {
            for (std::size_t lid = 0; lid < tile.gids.size(); ++lid) {
              const SafetyTuple& tp = info_.tuple(tile.gids[lid]);
              for (int ti = 0; ti < 4; ++ti) {
                if (!tp.is_safe(kAllZoneTypes[ti])) {
                  tile.labeler->set_status(static_cast<NodeId>(lid), ti,
                                           false);
                }
              }
            }
          } else {
            tile.labeler->initial_round(nullptr);
          }
          tile.flip_cursor = 0;
          tile.inbox.clear();
          tile.raise_inbox.clear();
          tile.raised_out.clear();
        }
      });
}

void ShardedNetwork::route_tiles_of(NodeId gid, std::vector<int>& out) const {
  out.clear();
  tiling_.tiles_containing(build_positions_[gid], out);
  const int owner = tiling_.owner_tile(build_positions_[gid]);
  if (std::find(out.begin(), out.end(), owner) == out.end()) {
    out.push_back(owner);
  }
}

void ShardedNetwork::demotion_exchange() {
  std::vector<int> route;
  bool more = true;
  while (more) {
    ++stats_.exchange_rounds;
    // Tile-local work in parallel: mirror the inbox demotions (ghost bits
    // fall, observers re-enqueue), then drain to the local fixpoint. Ghost
    // bits are stale only *upward* (a not-yet-mirrored demotion), so every
    // local flip justified here is justified against the true global bits.
    parallel_for_blocked(
        pool_, tiles_.size(), 1, [&](std::size_t lo, std::size_t hi) {
          for (std::size_t t = lo; t < hi; ++t) {
            Tile& tile = tiles_[t];
            for (const std::uint32_t k : tile.inbox) {
              tile.labeler->mirror_demotion(FlatLabeler::key_node(k),
                                            FlatLabeler::key_type(k));
            }
            tile.inbox.clear();
            tile.labeler->drain(nullptr);
          }
        });
    // Serial routing barrier, tile order: new owned flips apply to the
    // global tuples and mirror into every other tile replicating the node.
    more = false;
    for (std::size_t t = 0; t < tiles_.size(); ++t) {
      Tile& tile = tiles_[t];
      const auto flips = tile.labeler->flipped();
      for (std::size_t i = tile.flip_cursor; i < flips.size(); ++i) {
        const NodeId lid = FlatLabeler::key_node(flips[i]);
        const int ti = FlatLabeler::key_type(flips[i]);
        const NodeId gid = tile.gids[lid];
        info_.tuple(gid).set_safe(kAllZoneTypes[ti], false);
        route_tiles_of(gid, route);
        for (const int ot : route) {
          if (ot == static_cast<int>(t)) continue;
          const NodeId olid =
              tiles_[static_cast<std::size_t>(ot)].lid_of(gid);
          if (olid == kInvalidNode) continue;
          tiles_[static_cast<std::size_t>(ot)].inbox.push_back(
              FlatLabeler::key(olid, ti));
          ++stats_.halo_demotions;
          more = true;
        }
      }
      tile.flip_cursor = flips.size();
    }
  }

  // Quiescence barrier invariant: with every inbox drained and no key in
  // flight, each replica's status bits — owned and ghost alike — must agree
  // with the authoritative global tuples. A stale ghost here would let the
  // next epoch's flip tests read a world that never existed.
  if (kDchecksEnabled) {
    for (std::size_t t = 0; t < tiles_.size(); ++t) {
      const Tile& tile = tiles_[t];
      SPR_DCHECK(tile.inbox.empty(), "tile ", t,
                 " left the demotion exchange with a non-empty inbox");
      for (std::size_t lid = 0; lid < tile.gids.size(); ++lid) {
        const NodeId gid = tile.gids[lid];
        for (int ti = 0; ti < 4; ++ti) {
          SPR_DCHECK(
              tile.labeler->safe_bit(static_cast<NodeId>(lid), ti) ==
                  info_.tuple(gid).is_safe(kAllZoneTypes[ti]),
              "halo replica disagreement at quiescence: tile ", t, " lid ",
              lid, " gid ", gid, " type ", ti);
        }
      }
    }
  }
}

void ShardedNetwork::finish_epoch(const UnitDiskGraph& anchor_graph) {
  for (const Tile& tile : tiles_) {
    const LabelingStats& ls = tile.labeler->stats();
    stats_.incremental.reevaluations += ls.reevaluations;
    stats_.incremental.flips += ls.init_flips + ls.flips;
  }
  // Algorithm 2 chains greedy paths across tile borders, so anchors come
  // from the glued global graph — the identical code path (and inputs, the
  // statuses being at the same fixpoint) as the single-shard labelers.
  stats_.incremental.anchor_recomputes =
      recompute_all_anchors(anchor_graph, info_, pool_);
  // Per-epoch scratch peaks: the anchor pass just reset-and-filled the
  // calling thread's kernel arena, and every tile arena was reset in
  // begin_epoch — so bytes_allocated() is each arena's own epoch high
  // water, independent of what ran on the threads before (deterministic
  // across thread counts, like the rest of the stats).
  std::size_t high = FlatLabeler::scratch().bytes_allocated();
  for (const Tile& tile : tiles_) {
    high = std::max(high, tile.arena->bytes_allocated());
  }
  stats_.incremental.arena_high_water = high;
}

const SafetyInfo& ShardedNetwork::safety() {
  if (labeled_) return info_;
  stats_ = ShardStats{};
  info_ = SafetyInfo(std::vector<SafetyTuple>(global_->size()));
  global_->zones(pool_);  // the anchor pass below runs on the glued graph
  begin_epoch(/*from_info=*/false);
  demotion_exchange();
  finish_epoch(*global_);
  labeled_ = true;
  return info_;
}

void ShardedNetwork::apply_failures(const std::vector<NodeId>& failed) {
  safety();
  stats_ = ShardStats{};
  const std::size_t n = global_->size();

  auto next_global =
      std::make_unique<UnitDiskGraph>(global_->with_failures(failed, pool_));
  auto next_area = std::make_unique<InterestArea>(*next_global, band_);
  for (const NodeId f : failed) {
    if (f < n) info_.tuple(f) = SafetyTuple{};
  }
  global_ = std::move(next_global);
  area_ = std::move(next_area);

  // Patch every tile replicating a casualty (local edges can only change
  // where a local copy died); the rest keep their graphs untouched. Edge
  // flags never change under failures (the hull spans dead positions too),
  // so tile areas stay as built.
  parallel_for_blocked(
      pool_, tiles_.size(), 1, [&](std::size_t lo, std::size_t hi) {
        std::vector<NodeId> local;
        for (std::size_t t = lo; t < hi; ++t) {
          Tile& tile = tiles_[t];
          local.clear();
          for (const NodeId f : failed) {
            const NodeId lid = tile.lid_of(f);
            if (lid != kInvalidNode) local.push_back(lid);
          }
          if (local.empty()) continue;
          tile.labeler.reset();
          UnitDiskGraph patched = tile.graph->with_failures(local, nullptr);
          *tile.graph = std::move(patched);
        }
      });

  begin_epoch(/*from_info=*/true);

  // Seeds: the single-shard rule — every alive node within radio range of a
  // casualty — evaluated at each node's owner. A node in range of a failed
  // position has that casualty replicated in its owner tile (range <=
  // halo), so per-tile disc queries on the local grids cover the exact
  // global seed set.
  std::vector<std::size_t> tile_seeds(tiles_.size(), 0);
  parallel_for_blocked(
      pool_, tiles_.size(), 1, [&](std::size_t lo, std::size_t hi) {
        std::vector<NodeId> near;
        for (std::size_t t = lo; t < hi; ++t) {
          Tile& tile = tiles_[t];
          near.clear();
          for (const NodeId f : failed) {
            const NodeId lid = tile.lid_of(f);
            if (lid == kInvalidNode) continue;
            tile.graph->grid().query_radius(tile.graph->position(lid),
                                            tile.graph->range(), lid, near);
          }
          std::sort(near.begin(), near.end());
          near.erase(std::unique(near.begin(), near.end()), near.end());
          std::size_t seeds = 0;
          for (const NodeId ul : near) {
            if (ul >= tile.owned) continue;  // ghosts seed at their owner
            if (!tile.graph->alive(ul)) continue;
            for (int ti = 0; ti < 4; ++ti) {
              if (tile.labeler->enqueue(ul, ti)) ++seeds;
            }
          }
          tile_seeds[t] = seeds;
        }
      });
  for (const std::size_t s : tile_seeds) stats_.incremental.seeds += s;

  demotion_exchange();
  finish_epoch(*global_);
}

void ShardedNetwork::apply_moves(const std::vector<Vec2>& positions,
                                 EdgeDiff* diff) {
  safety();
  stats_ = ShardStats{};
  const std::size_t n = global_->size();

  EdgeDiff scratch_diff;
  EdgeDiff* d = diff != nullptr ? diff : &scratch_diff;
  auto next_global =
      std::make_unique<UnitDiskGraph>(global_->with_moves(positions, d, pool_));
  auto next_area = std::make_unique<InterestArea>(*next_global, band_);

  auto old_global = std::move(global_);
  auto old_area = std::move(area_);
  global_ = std::move(next_global);
  area_ = std::move(next_area);

  // Partition maintenance. While every node's cumulative drift since the
  // partition build stays within slack/2, the frozen membership still
  // satisfies the halo invariant (an owned node and any unit-disk neighbor
  // both lie within range + slack of the owner rect, by the triangle
  // inequality), so tiles patch their local graphs in place; larger drift
  // rebuilds the partition from current positions.
  const double limit = 0.5 * slack_;
  bool in_slack = true;
  for (NodeId u = 0; u < n && in_slack; ++u) {
    in_slack = distance_sq(global_->position(u), build_positions_[u]) <=
               limit * limit;
  }
  if (in_slack) {
    parallel_for_blocked(
        pool_, tiles_.size(), 1, [&](std::size_t lo, std::size_t hi) {
          std::vector<Vec2> local_pos;
          for (std::size_t t = lo; t < hi; ++t) {
            Tile& tile = tiles_[t];
            const std::size_t m = tile.gids.size();
            local_pos.resize(m);
            bool any_moved = false;
            for (std::size_t lid = 0; lid < m; ++lid) {
              local_pos[lid] = global_->position(tile.gids[lid]);
              any_moved =
                  any_moved ||
                  !(local_pos[lid] ==
                    tile.graph->position(static_cast<NodeId>(lid)));
            }
            tile.labeler.reset();
            if (any_moved) {
              UnitDiskGraph patched =
                  tile.graph->with_moves(local_pos, nullptr, nullptr);
              *tile.graph = std::move(patched);
            }
            refresh_tile_area(tile);  // the hull (and so the band) moved
          }
        });
  } else {
    stats_.repartitions = 1;
    build_partition();
  }

  begin_epoch(/*from_info=*/true);

  // The move frontier — update_safety_after_moves' delta walk, run on the
  // glued snapshots with each (node, type) event evaluated at the node
  // itself (both endpoints are walked, so both directions of every edge
  // event are seen). Seeds then route to each pair's owner tile.
  const UnitDiskGraph& before = *old_global;
  const UnitDiskGraph& after = *global_;
  const std::size_t node_words = (n + 63) / 64;
  const std::size_t key_words = (4 * n + 63) / 64;
  std::vector<std::uint64_t> touched(node_words, 0);
  std::vector<std::uint64_t> demote_seed(key_words, 0);
  std::vector<std::uint64_t> promote_src(key_words, 0);
  for (NodeId u = 0; u < n; ++u) {
    if (before.position(u) == after.position(u)) continue;
    set_bit(touched.data(), u);
    for (const NodeId v : before.neighbors(u)) set_bit(touched.data(), v);
    for (const NodeId v : after.neighbors(u)) set_bit(touched.data(), v);
  }

  // Per-node walk in parallel: a block of 1024 nodes spans exactly 64 key
  // words, so blocks never share a bitmap word and the scatter is race-free
  // and deterministic.
  parallel_for_blocked(pool_, n, 1024, [&](std::size_t lo, std::size_t hi) {
    for (NodeId u = static_cast<NodeId>(lo); u < hi; ++u) {
      if (!after.alive(u)) continue;
      if (test_bit(touched.data(), u)) {
        const Vec2 pu_old = before.position(u);
        const Vec2 pu_new = after.position(u);
        const bool u_moved = !(pu_old == pu_new);
        const auto old_list = before.neighbors(u);
        const auto new_list = after.neighbors(u);
        std::size_t oi = 0, ni = 0;
        while (oi < old_list.size() || ni < new_list.size()) {
          const NodeId vo =
              oi < old_list.size() ? old_list[oi] : kInvalidNode;
          const NodeId vn =
              ni < new_list.size() ? new_list[ni] : kInvalidNode;
          if (vn == kInvalidNode || (vo != kInvalidNode && vo < vn)) {
            // Lost a quadrant member: demotable.
            set_bit(demote_seed.data(),
                    FlatLabeler::key(
                        u, zone_index(zone_type(pu_old, before.position(vo)))));
            ++oi;
          } else if (vo == kInvalidNode || vn < vo) {
            // Gained a member: a promotion source only when it arrives
            // old-safe (the terminal case of any promotion chain).
            const ZoneType t = zone_type(pu_new, after.position(vn));
            if (info_.is_safe(vn, t)) {
              set_bit(promote_src.data(), FlatLabeler::key(u, zone_index(t)));
            }
            ++ni;
          } else {
            // Surviving edge: relative quadrant may have flipped.
            const Vec2 pv_old = before.position(vo);
            const Vec2 pv_new = after.position(vo);
            if (u_moved || !(pv_old == pv_new)) {
              const ZoneType t_old = zone_type(pu_old, pv_old);
              const ZoneType t_new = zone_type(pu_new, pv_new);
              if (t_old != t_new) {
                set_bit(demote_seed.data(),
                        FlatLabeler::key(u, zone_index(t_old)));
                if (info_.is_safe(vo, t_new)) {
                  set_bit(promote_src.data(),
                          FlatLabeler::key(u, zone_index(t_new)));
                }
              }
            }
            ++oi;
            ++ni;
          }
        }
      }
      const bool was_edge = old_area->is_edge_node(u);
      const bool is_edge = area_->is_edge_node(u);
      if (was_edge && !is_edge) {
        for (int ti = 0; ti < 4; ++ti) {
          set_bit(demote_seed.data(), FlatLabeler::key(u, ti));
        }
      } else if (!was_edge && is_edge) {
        for (int ti = 0; ti < 4; ++ti) {
          if (!info_.is_safe(u, kAllZoneTypes[ti])) {
            set_bit(promote_src.data(), FlatLabeler::key(u, ti));
          }
        }
      }
    }
  });

  // Promotion exchange: cluster raises run at each source's owner; raises
  // that reach a ghost forward to that node's owner, whose full
  // neighborhood continues the flood — every global edge has both endpoints
  // replicated at each endpoint's owner, so the union of the per-tile
  // floods is the global touched-cluster raise, by induction over rounds.
  bool raising = false;
  for_each_key(promote_src.data(), key_words, [&](std::uint32_t k) {
    const NodeId gid = FlatLabeler::key_node(k);
    const int owner = tiling_.owner_tile(build_positions_[gid]);
    Tile& tile = tiles_[static_cast<std::size_t>(owner)];
    tile.raise_inbox.push_back(
        FlatLabeler::key(tile.lid_of(gid), FlatLabeler::key_type(k)));
    raising = true;
  });
  std::vector<std::uint64_t> raised_global(key_words, 0);
  while (raising) {
    parallel_for_blocked(
        pool_, tiles_.size(), 1, [&](std::size_t lo, std::size_t hi) {
          for (std::size_t t = lo; t < hi; ++t) {
            Tile& tile = tiles_[t];
            tile.raised_out.clear();
            if (tile.raise_inbox.empty()) continue;
            const auto raised = tile.labeler->raise_clusters(
                {tile.raise_inbox.data(), tile.raise_inbox.size()}, nullptr);
            tile.raised_out.assign(raised.begin(), raised.end());
            tile.raise_inbox.clear();
          }
        });
    raising = false;
    for (std::size_t t = 0; t < tiles_.size(); ++t) {
      Tile& tile = tiles_[t];
      for (const std::uint32_t k : tile.raised_out) {
        const NodeId lid = FlatLabeler::key_node(k);
        const int ti = FlatLabeler::key_type(k);
        const NodeId gid = tile.gids[lid];
        if (lid < tile.owned) {
          set_bit(raised_global.data(), FlatLabeler::key(gid, ti));
        } else {
          const int owner = tiling_.owner_tile(build_positions_[gid]);
          Tile& ot = tiles_[static_cast<std::size_t>(owner)];
          const NodeId olid = ot.lid_of(gid);
          // Already safe at the owner means the owner's own flood raised it
          // (both copies started from info_), so it is already recorded.
          if (!ot.labeler->safe_bit(olid, ti)) {
            ot.raise_inbox.push_back(FlatLabeler::key(olid, ti));
            ++stats_.halo_raises;
            raising = true;
          }
        }
      }
    }
  }

  // Sync-up: every raised pair goes safe in the tuples and in *all* its
  // replicas (a stale-low ghost bit would let a neighbor's demotion pass
  // unjustified), sheds its stale anchors, and re-enters the demotion
  // worklist as an optimistic raise.
  std::vector<int> route;
  for_each_key(raised_global.data(), key_words, [&](std::uint32_t k) {
    const NodeId gid = FlatLabeler::key_node(k);
    const int ti = FlatLabeler::key_type(k);
    const ZoneType t = kAllZoneTypes[ti];
    info_.tuple(gid).set_safe(t, true);
    info_.tuple(gid).anchors_for(t) = ShapeAnchors{};
    ++stats_.incremental.promotions;
    route_tiles_of(gid, route);
    for (const int rt : route) {
      Tile& tile = tiles_[static_cast<std::size_t>(rt)];
      const NodeId rlid = tile.lid_of(gid);
      if (rlid == kInvalidNode) continue;
      tile.labeler->set_status(rlid, ti, true);
    }
    set_bit(demote_seed.data(), k);
  });

  // Demotion seeds enqueue at each pair's owner; cross-halo consequences
  // travel through the exchange.
  std::size_t seeds = 0;
  for_each_key(demote_seed.data(), key_words, [&](std::uint32_t k) {
    const NodeId gid = FlatLabeler::key_node(k);
    if (!after.alive(gid)) return;
    const int owner = tiling_.owner_tile(build_positions_[gid]);
    Tile& tile = tiles_[static_cast<std::size_t>(owner)];
    if (tile.labeler->enqueue(tile.lid_of(gid), FlatLabeler::key_type(k))) {
      ++seeds;
    }
  });
  stats_.incremental.seeds = seeds;

  demotion_exchange();
  finish_epoch(after);
}

}  // namespace spr
