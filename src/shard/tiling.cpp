#include "shard/tiling.h"

#include <algorithm>
#include <cmath>

namespace spr {

Tiling::Tiling(Rect field, int rows, int cols, double halo)
    : field_(field),
      rows_(rows < 1 ? 1 : rows),
      cols_(cols < 1 ? 1 : cols),
      halo_(halo < 0.0 ? 0.0 : halo) {
  tile_w_ = field_.width() / static_cast<double>(cols_);
  tile_h_ = field_.height() / static_cast<double>(rows_);
}

Rect Tiling::tile_rect(int index) const noexcept {
  const int r = index / cols_;
  const int c = index % cols_;
  const Vec2 lo{field_.lo().x + tile_w_ * static_cast<double>(c),
                field_.lo().y + tile_h_ * static_cast<double>(r)};
  // The last row/column absorbs the floating-point remainder so tiles tile
  // the field exactly.
  const Vec2 hi{c + 1 == cols_ ? field_.hi().x : lo.x + tile_w_,
                r + 1 == rows_ ? field_.hi().y : lo.y + tile_h_};
  return Rect::from_bounds(lo, hi);
}

int Tiling::owner_tile(Vec2 p) const noexcept {
  auto clamp_index = [](double offset, double step, int count) {
    int i = step > 0.0 ? static_cast<int>(std::floor(offset / step)) : 0;
    return std::clamp(i, 0, count - 1);
  };
  const int c = clamp_index(p.x - field_.lo().x, tile_w_, cols_);
  const int r = clamp_index(p.y - field_.lo().y, tile_h_, rows_);
  return r * cols_ + c;
}

void Tiling::tiles_containing(Vec2 p, std::vector<int>& out) const {
  // Candidate index ranges from floor arithmetic, then the exact closed
  // predicate per candidate — the one-sample expansion makes boundary
  // points (distance exactly halo) immune to floor rounding.
  auto range = [](double offset, double step, int count, double halo, int& lo,
                  int& hi) {
    if (step <= 0.0) {
      lo = 0;
      hi = count - 1;
      return;
    }
    lo = std::clamp(
        static_cast<int>(std::floor((offset - halo) / step)) - 1, 0, count - 1);
    hi = std::clamp(
        static_cast<int>(std::floor((offset + halo) / step)) + 1, 0, count - 1);
  };
  int c_lo, c_hi, r_lo, r_hi;
  range(p.x - field_.lo().x, tile_w_, cols_, halo_, c_lo, c_hi);
  range(p.y - field_.lo().y, tile_h_, rows_, halo_, r_lo, r_hi);
  for (int r = r_lo; r <= r_hi; ++r) {
    for (int c = c_lo; c <= c_hi; ++c) {
      const int index = r * cols_ + c;
      if (tile_rect(index).distance_to(p) <= halo_) out.push_back(index);
    }
  }
}

}  // namespace spr
