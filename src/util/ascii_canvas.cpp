#include "util/ascii_canvas.h"

#include <algorithm>
#include <cmath>

namespace spr {

AsciiCanvas::AsciiCanvas(int cols, int rows, double min_x, double min_y,
                         double max_x, double max_y)
    : cols_(cols),
      rows_(rows),
      min_x_(min_x),
      min_y_(min_y),
      max_x_(max_x),
      max_y_(max_y),
      grid_(static_cast<size_t>(rows), std::string(static_cast<size_t>(cols), ' ')) {}

bool AsciiCanvas::to_cell(double x, double y, int& col, int& row) const {
  if (x < min_x_ || x > max_x_ || y < min_y_ || y > max_y_) return false;
  double fx = (x - min_x_) / (max_x_ - min_x_);
  double fy = (y - min_y_) / (max_y_ - min_y_);
  col = std::min(cols_ - 1, static_cast<int>(fx * cols_));
  row = std::min(rows_ - 1, static_cast<int>((1.0 - fy) * rows_));
  row = std::max(0, row);
  return true;
}

void AsciiCanvas::plot(double x, double y, char glyph) {
  int col, row;
  if (to_cell(x, y, col, row)) grid_[static_cast<size_t>(row)][static_cast<size_t>(col)] = glyph;
}

void AsciiCanvas::line(double x0, double y0, double x1, double y1, char glyph) {
  double dx = x1 - x0, dy = y1 - y0;
  double world_per_col = (max_x_ - min_x_) / cols_;
  double world_per_row = (max_y_ - min_y_) / rows_;
  double step = std::min(world_per_col, world_per_row) * 0.5;
  double length = std::hypot(dx, dy);
  int n = std::max(1, static_cast<int>(length / step));
  for (int i = 0; i <= n; ++i) {
    double t = static_cast<double>(i) / n;
    plot(x0 + t * dx, y0 + t * dy, glyph);
  }
}

void AsciiCanvas::fill_rect(double x0, double y0, double x1, double y1, char glyph) {
  if (x0 > x1) std::swap(x0, x1);
  if (y0 > y1) std::swap(y0, y1);
  double world_per_col = (max_x_ - min_x_) / cols_;
  double world_per_row = (max_y_ - min_y_) / rows_;
  for (double y = y0; y <= y1; y += world_per_row * 0.9) {
    for (double x = x0; x <= x1; x += world_per_col * 0.9) {
      plot(x, y, glyph);
    }
  }
}

std::string AsciiCanvas::render() const {
  std::string out;
  out.reserve(static_cast<size_t>((cols_ + 3) * (rows_ + 2)));
  out.push_back('+');
  out.append(static_cast<size_t>(cols_), '-');
  out.append("+\n");
  for (const auto& row : grid_) {
    out.push_back('|');
    out.append(row);
    out.append("|\n");
  }
  out.push_back('+');
  out.append(static_cast<size_t>(cols_), '-');
  out.append("+\n");
  return out;
}

}  // namespace spr
