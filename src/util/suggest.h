#pragma once

/// \file suggest.h
/// "Did you mean" machinery shared by every name lookup that rejects
/// unknown input: scenario names (ScenarioSuite::run) and report format
/// tokens (parse_report_formats). Candidates rank by prefix match first,
/// then by Levenshtein distance within a budget scaled to the query length.

#include <string>
#include <string_view>
#include <vector>

namespace spr {

/// Levenshtein edit distance between `a` and `b`.
std::size_t edit_distance(std::string_view a, std::string_view b);

/// The members of `candidates` close to `name` — every candidate `name` is
/// a prefix of (best, in candidate order), then candidates within an edit
/// distance of max(2, |name| / 3), nearest first (ties keep candidate
/// order). Empty when nothing is close.
std::vector<std::string> near_matches(
    std::string_view name, const std::vector<std::string>& candidates);

}  // namespace spr
