#include "util/task_pool.h"

#include <algorithm>

#include "util/check.h"

namespace spr {

namespace {

/// The pool whose worker loop the current thread is inside, if any. Set for
/// the lifetime of worker_loop, so nested dispatch can detect "I *am* the
/// pool" and run inline instead of deadlocking.
thread_local const TaskPool* tl_current_pool = nullptr;

}  // namespace

int TaskPool::hardware_threads() noexcept {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

TaskPool::TaskPool(int threads) {
  int count = threads <= 0 ? hardware_threads() : threads;
  workers_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    threads_.emplace_back(
        [this, i] { worker_loop(static_cast<std::size_t>(i)); });
  }
}

TaskPool::~TaskPool() { shutdown(); }

void TaskPool::shutdown() {
  // Drain, but never throw: a stored task exception stays swallowed unless
  // the owner called wait_idle() first.
  try {
    wait_idle();
  } catch (...) {
  }
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    if (stop_.load(std::memory_order_acquire)) return;  // second shutdown
    stop_.store(true, std::memory_order_release);
  }
  wake_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
  threads_.clear();
}

bool TaskPool::on_worker_thread() const noexcept {
  return tl_current_pool == this;
}

void TaskPool::submit(Task task) {
  SPR_CHECK(!is_shutdown(), "submit to a shut-down TaskPool");
  // Count before publishing: a worker may pop and finish the task the
  // instant it lands in the queue (nested submits from a running task), and
  // its fetch_sub must never observe an uncounted task.
  pending_.fetch_add(1, std::memory_order_release);
  queued_.fetch_add(1, std::memory_order_release);
  std::size_t slot =
      next_worker_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  {
    std::lock_guard<std::mutex> lock(workers_[slot]->mutex);
    workers_[slot]->queue.push_back(std::move(task));
  }
  {
    // Taken (and immediately dropped) so the increment can't slip into the
    // window between a sleeping worker's predicate check and its wait.
    std::lock_guard<std::mutex> lock(wake_mutex_);
  }
  wake_cv_.notify_one();
}

bool TaskPool::try_run_one(std::size_t self) {
  Task task;
  // Own queue first, LIFO (the freshest task is the cache-warmest) ...
  {
    Worker& mine = *workers_[self];
    std::lock_guard<std::mutex> lock(mine.mutex);
    if (!mine.queue.empty()) {
      task = std::move(mine.queue.back());
      mine.queue.pop_back();
    }
  }
  // ... then steal FIFO from a victim, scanning from the next worker round.
  if (!task) {
    for (std::size_t k = 1; k < workers_.size() && !task; ++k) {
      Worker& victim = *workers_[(self + k) % workers_.size()];
      std::lock_guard<std::mutex> lock(victim.mutex);
      if (!victim.queue.empty()) {
        task = std::move(victim.queue.front());
        victim.queue.pop_front();
      }
    }
  }
  if (!task) return false;
  queued_.fetch_sub(1, std::memory_order_acq_rel);

  try {
    task();
  } catch (...) {
    std::lock_guard<std::mutex> lock(error_mutex_);
    if (!first_error_) first_error_ = std::current_exception();
  }
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(wake_mutex_);  // see submit()
    idle_cv_.notify_all();
  }
  return true;
}

void TaskPool::worker_loop(std::size_t self) {
  tl_current_pool = this;
  while (true) {
    if (try_run_one(self)) continue;
    std::unique_lock<std::mutex> lock(wake_mutex_);
    // Sleep on *queued* work, not in-flight work: while other workers chew
    // on long tasks there is nothing to steal, and spinning here would burn
    // every idle core re-locking their queue mutexes.
    wake_cv_.wait(lock, [this] {
      return stop_.load(std::memory_order_acquire) ||
             queued_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

void TaskPool::wait_idle() {
  {
    std::unique_lock<std::mutex> lock(wake_mutex_);
    idle_cv_.wait(lock, [this] {
      return pending_.load(std::memory_order_acquire) == 0;
    });
  }
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(error_mutex_);
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

void TaskPool::parallel_for(std::size_t n,
                            const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = 0; i < n; ++i) {
    submit([&fn, i] { fn(i); });
  }
  wait_idle();
}

void parallel_for_blocked(
    TaskPool* pool, std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (pool == nullptr || pool->thread_count() <= 1 || n < 2 * grain ||
      pool->on_worker_thread()) {
    fn(0, n);
    return;
  }
  const std::size_t blocks = (n + grain - 1) / grain;
  pool->parallel_for(blocks, [&](std::size_t b) {
    fn(b * grain, std::min(n, (b + 1) * grain));
  });
}

}  // namespace spr
