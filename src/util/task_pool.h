#pragma once

/// \file task_pool.h
/// A small work-stealing thread pool for embarrassingly parallel sweeps.
///
/// Each worker owns a deque: it pops its own tasks LIFO (cache-warm) and
/// steals FIFO from victims when empty, so imbalanced task durations — e.g.
/// sweep cells whose node counts differ 2x — rebalance automatically.
/// `parallel_for` is the main entry point; `submit`/`wait_idle` compose for
/// irregular task graphs. Exceptions thrown by tasks are captured and the
/// first one rethrown to the caller of `wait_idle`/`parallel_for`; the
/// destructor drains outstanding tasks but swallows stored exceptions.

#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include <atomic>
#include <condition_variable>

namespace spr {

class TaskPool {
 public:
  using Task = std::function<void()>;

  /// `threads == 0` uses the hardware concurrency (at least 1). A pool of
  /// size 1 still runs tasks on its single worker thread; use
  /// `parallel_for(1, ...)`-style inline loops for a strictly serial path.
  explicit TaskPool(int threads = 0);

  /// Joins all workers (after draining the queues).
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Drains outstanding tasks, stops and joins every worker. Idempotent —
  /// a second call (or the destructor after it) is a no-op. After shutdown
  /// the pool accepts no new work: `submit` fails an SPR_CHECK. Swallows
  /// stored task exceptions like the destructor; call `wait_idle` first to
  /// observe them.
  void shutdown();

  /// Whether the pool has been shut down (explicitly or mid-destruction).
  bool is_shutdown() const noexcept {
    return stop_.load(std::memory_order_acquire);
  }

  std::size_t thread_count() const noexcept { return workers_.size(); }

  /// True when the calling thread is one of this pool's workers. Blocking
  /// on one's own pool deadlocks, so dispatch helpers use this to fall back
  /// to inline execution for nested calls.
  bool on_worker_thread() const noexcept;

  /// Enqueues one task (round-robin across worker deques).
  void submit(Task task);

  /// Blocks until every submitted task has finished; rethrows the first
  /// task exception, if any.
  void wait_idle();

  /// Runs fn(0) .. fn(n-1) across the pool and blocks until done.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Hardware concurrency clamped to >= 1.
  static int hardware_threads() noexcept;

 private:
  struct Worker {
    std::deque<Task> queue;
    std::mutex mutex;
  };

  void worker_loop(std::size_t self);
  bool try_run_one(std::size_t self);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  std::condition_variable idle_cv_;
  std::atomic<std::size_t> pending_{0};  ///< submitted, not yet finished
  std::atomic<std::size_t> queued_{0};   ///< submitted, not yet popped
  std::atomic<std::size_t> next_worker_{0};
  std::atomic<bool> stop_{false};
  std::mutex error_mutex_;
  std::exception_ptr first_error_;
};

/// Runs fn(range_begin, range_end) over [0, n) in disjoint blocks of
/// `grain` elements — on `pool` when it is non-null, has more than one
/// worker and n spans at least two blocks; serially on the calling thread
/// otherwise. The shared dispatch behind the deterministic within-network
/// build passes (unit-disk adjacency, safety-labeling init): blocks never
/// overlap, so per-element writes stay race-free and order-independent.
/// Calls from a worker of `pool` itself (nested dispatch) run serially
/// inline instead of blocking on the pool — blocking on one's own pool
/// from a worker deadlocks, so nesting degrades to the serial path, which
/// is bit-identical anyway.
void parallel_for_blocked(
    TaskPool* pool, std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn);

}  // namespace spr
