#pragma once

/// \file json.h
/// Minimal JSON layer for machine-readable bench/scenario output and for
/// reading it back (shard merge, artifact validation).
///
/// JsonWriter is a streaming emitter — no DOM, automatic comma placement
/// and string escaping:
///
///   JsonWriter w;
///   w.begin_object();
///   w.key("nodes").value(600);
///   w.key("schemes").begin_array();
///   w.value("GF").value("SLGF2");
///   w.end_array();
///   w.end_object();
///   std::string text = w.str();
///
/// JsonValue is the matching reader-side DOM: a strict recursive-descent
/// parser (depth-capped, bounds-checked) plus just enough construction API
/// to build report payloads programmatically. Numbers keep an exact
/// int64/uint64 representation when the token is integral, so 64-bit seeds
/// and counters round-trip exactly; doubles are emitted with %.17g and
/// parsed with from_chars, so finite doubles round-trip bit-exactly too.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace spr {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member key; must be followed by a value or container.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  JsonWriter& value(double number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(int number) { return value(static_cast<std::int64_t>(number)); }
  JsonWriter& value(bool flag);
  JsonWriter& null();

  /// The document so far. Well-formed once every container is closed.
  const std::string& str() const noexcept { return out_; }

  /// Writes str() to `path`; returns false on I/O error.
  bool write_file(const std::string& path) const;

 private:
  void comma();

  std::string out_;
  std::vector<bool> first_in_scope_{true};  // per open container
  bool after_key_ = false;
};

/// A parsed (or programmatically built) JSON document node.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  /// One object member; members keep insertion/document order.
  using Member = std::pair<std::string, JsonValue>;

  JsonValue() = default;  ///< null

  // ------------------------------------------------------------ builders
  static JsonValue array();
  static JsonValue object();
  static JsonValue of(bool flag);
  static JsonValue of(double number);
  static JsonValue of(std::int64_t number);
  static JsonValue of(std::uint64_t number);
  static JsonValue of(int number) { return of(static_cast<std::int64_t>(number)); }
  static JsonValue of(std::string_view text);
  static JsonValue of(const char* text) { return of(std::string_view(text)); }

  /// Appends to an array. A non-array target (null or scalar) is replaced
  /// by a fresh array first.
  JsonValue& push(JsonValue item);
  /// Sets an object member, replacing an existing key. A non-object target
  /// (null or scalar) is replaced by a fresh object first. Returns *this
  /// for chaining.
  JsonValue& set(std::string key, JsonValue value);

  // ------------------------------------------------------------ inspection
  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::kNull; }
  bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  bool is_number() const noexcept { return kind_ == Kind::kNumber; }
  /// True for numbers carried exactly as int64/uint64 (an integral token,
  /// or a value built from an integer) — what strict integer readers check
  /// so "1.7" can't silently truncate into an index.
  bool is_integer() const noexcept {
    return kind_ == Kind::kNumber && repr_ != NumRepr::kDouble;
  }
  bool is_string() const noexcept { return kind_ == Kind::kString; }
  bool is_array() const noexcept { return kind_ == Kind::kArray; }
  bool is_object() const noexcept { return kind_ == Kind::kObject; }

  bool as_bool(bool fallback = false) const noexcept;
  double as_double(double fallback = 0.0) const noexcept;
  std::int64_t as_int64(std::int64_t fallback = 0) const noexcept;
  std::uint64_t as_uint64(std::uint64_t fallback = 0) const noexcept;
  /// String payload; empty for non-strings.
  const std::string& as_string() const noexcept;

  /// Element / member count (0 for scalars).
  std::size_t size() const noexcept;
  /// Array element, or a shared null when out of range / not an array.
  const JsonValue& at(std::size_t index) const noexcept;
  /// Object member by key, or nullptr when absent / not an object.
  const JsonValue* find(std::string_view key) const noexcept;
  /// Object member by key, or a shared null when absent.
  const JsonValue& get(std::string_view key) const noexcept;

  const std::vector<JsonValue>& items() const noexcept { return items_; }
  const std::vector<Member>& members() const noexcept { return members_; }

  // ------------------------------------------------------------ round-trip
  /// Emits this value at the writer's current position. Integral numbers
  /// are written exactly; doubles via the writer's %.17g path.
  void write(JsonWriter& w) const;
  /// The value as a standalone compact document.
  std::string dump() const;

  /// Strict parse of a complete document (one value plus whitespace).
  /// Returns false on malformed input; `error`, when non-null, receives a
  /// short message with the byte offset. Never throws, never reads out of
  /// bounds; nesting deeper than 200 levels is rejected.
  static bool parse(std::string_view text, JsonValue& out,
                    std::string* error = nullptr);
  /// parse() over a file's contents; false on I/O error too.
  static bool parse_file(const std::string& path, JsonValue& out,
                         std::string* error = nullptr);

 private:
  enum class NumRepr { kDouble, kInt64, kUint64 };

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  NumRepr repr_ = NumRepr::kDouble;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<Member> members_;

  friend class JsonParser;
};

}  // namespace spr
