#pragma once

/// \file json.h
/// Minimal streaming JSON emitter for machine-readable bench/scenario
/// output. No DOM, no parsing — just well-formed output with automatic
/// comma placement and string escaping.
///
///   JsonWriter w;
///   w.begin_object();
///   w.key("nodes").value(600);
///   w.key("schemes").begin_array();
///   w.value("GF").value("SLGF2");
///   w.end_array();
///   w.end_object();
///   std::string text = w.str();

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace spr {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member key; must be followed by a value or container.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  JsonWriter& value(double number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(int number) { return value(static_cast<std::int64_t>(number)); }
  JsonWriter& value(bool flag);
  JsonWriter& null();

  /// The document so far. Well-formed once every container is closed.
  const std::string& str() const noexcept { return out_; }

  /// Writes str() to `path`; returns false on I/O error.
  bool write_file(const std::string& path) const;

 private:
  void comma();

  std::string out_;
  std::vector<bool> first_in_scope_{true};  // per open container
  bool after_key_ = false;
};

}  // namespace spr
