#include "util/flags.h"

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace spr {

namespace {

bool parse_int(std::string_view text, int& out) {
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc() && ptr == text.data() + text.size();
}

bool parse_uint64(std::string_view text, unsigned long long& out) {
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc() && ptr == text.data() + text.size();
}

bool parse_double(std::string_view text, double& out) {
  // std::from_chars<double> is available in libstdc++ 11+, but strtod keeps
  // this portable to older standard libraries.
  std::string owned(text);
  char* end = nullptr;
  out = std::strtod(owned.c_str(), &end);
  return end == owned.c_str() + owned.size() && !owned.empty();
}

bool parse_boolish(std::string_view text, bool& out) {
  if (text == "true" || text == "1" || text == "yes" || text == "on") {
    out = true;
    return true;
  }
  if (text == "false" || text == "0" || text == "no" || text == "off") {
    out = false;
    return true;
  }
  return false;
}

}  // namespace

FlagSet::FlagSet(std::string program_description)
    : description_(std::move(program_description)) {}

void FlagSet::add_int(std::string name, int* target, std::string help) {
  Flag flag;
  flag.help = std::move(help);
  flag.default_value = std::to_string(*target);
  flag.set = [target](std::string_view value) { return parse_int(value, *target); };
  flags_.emplace(std::move(name), std::move(flag));
}

void FlagSet::add_uint64(std::string name, unsigned long long* target, std::string help) {
  Flag flag;
  flag.help = std::move(help);
  flag.default_value = std::to_string(*target);
  flag.set = [target](std::string_view value) { return parse_uint64(value, *target); };
  flags_.emplace(std::move(name), std::move(flag));
}

void FlagSet::add_double(std::string name, double* target, std::string help) {
  Flag flag;
  flag.help = std::move(help);
  flag.default_value = std::to_string(*target);
  flag.set = [target](std::string_view value) { return parse_double(value, *target); };
  flags_.emplace(std::move(name), std::move(flag));
}

void FlagSet::add_bool(std::string name, bool* target, std::string help) {
  Flag flag;
  flag.help = std::move(help);
  flag.default_value = *target ? "true" : "false";
  flag.is_bool = true;
  flag.set = [target](std::string_view value) { return parse_boolish(value, *target); };
  flags_.emplace(std::move(name), std::move(flag));
}

void FlagSet::add_string(std::string name, std::string* target, std::string help) {
  Flag flag;
  flag.help = std::move(help);
  flag.default_value = *target;
  flag.set = [target](std::string_view value) {
    *target = std::string(value);
    return true;
  };
  flags_.emplace(std::move(name), std::move(flag));
}

bool FlagSet::apply(const std::string& name, std::string_view value) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    std::fprintf(stderr, "unknown flag --%s\n%s", name.c_str(), usage().c_str());
    return false;
  }
  if (!it->second.set(value)) {
    std::fprintf(stderr, "bad value '%.*s' for flag --%s\n",
                 static_cast<int>(value.size()), value.data(), name.c_str());
    return false;
  }
  return true;
}

bool FlagSet::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (!arg.starts_with("--")) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    std::string name;
    std::optional<std::string_view> inline_value;
    if (auto eq = arg.find('='); eq != std::string_view::npos) {
      name = std::string(arg.substr(0, eq));
      inline_value = arg.substr(eq + 1);
    } else {
      name = std::string(arg);
    }

    auto it = flags_.find(name);
    bool negated = false;
    if (it == flags_.end() && name.starts_with("no-")) {
      auto base = flags_.find(name.substr(3));
      if (base != flags_.end() && base->second.is_bool) {
        it = base;
        name = name.substr(3);
        negated = true;
      }
    }
    if (it != flags_.end() && it->second.is_bool && !inline_value) {
      if (!apply(name, negated ? "false" : "true")) return false;
      continue;
    }
    if (inline_value) {
      if (!apply(name, *inline_value)) return false;
      continue;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "flag --%s expects a value\n", name.c_str());
      return false;
    }
    if (!apply(name, argv[++i])) return false;
  }
  return true;
}

std::string FlagSet::usage() const {
  std::ostringstream out;
  out << description_ << "\n\nFlags:\n";
  for (const auto& [name, flag] : flags_) {
    out << "  --" << name;
    if (!flag.is_bool) out << "=<value>";
    out << "  (default: " << flag.default_value << ")\n      " << flag.help << "\n";
  }
  return out.str();
}

}  // namespace spr
