#pragma once

/// \file ascii_canvas.h
/// Terminal renderer for deployment fields, holes, and routing paths.
///
/// Used by the examples to visualize a 200 m x 200 m field as a character
/// grid. World coordinates are mapped to cells; later draws overwrite earlier
/// ones, so draw background (nodes) first, then overlays (paths, endpoints).

#include <string>
#include <vector>

namespace spr {

/// Fixed-size character canvas over a rectangular world region.
class AsciiCanvas {
 public:
  /// Canvas of `cols` x `rows` characters covering world rect
  /// [min_x, max_x] x [min_y, max_y]. World y grows upward; row 0 is the top.
  AsciiCanvas(int cols, int rows, double min_x, double min_y, double max_x,
              double max_y);

  int cols() const noexcept { return cols_; }
  int rows() const noexcept { return rows_; }

  /// Plots `glyph` at world position (x, y); out-of-range points are ignored.
  void plot(double x, double y, char glyph);

  /// Draws a straight world-space segment with `glyph` (naive DDA).
  void line(double x0, double y0, double x1, double y1, char glyph);

  /// Fills the world-space axis-aligned rectangle with `glyph`.
  void fill_rect(double x0, double y0, double x1, double y1, char glyph);

  /// Renders the canvas with a border frame.
  std::string render() const;

 private:
  bool to_cell(double x, double y, int& col, int& row) const;

  int cols_, rows_;
  double min_x_, min_y_, max_x_, max_y_;
  std::vector<std::string> grid_;
};

}  // namespace spr
