#include "util/svg.h"

#include <fstream>
#include <sstream>

namespace spr {

SvgCanvas::SvgCanvas(Rect world, double pixels_per_meter)
    : world_(world), scale_(pixels_per_meter) {}

double SvgCanvas::tx(double world_x) const noexcept {
  return (world_x - world_.lo().x) * scale_;
}

double SvgCanvas::ty(double world_y) const noexcept {
  return (world_.hi().y - world_y) * scale_;  // flip: world +y is up
}

void SvgCanvas::circle(Vec2 center, double radius_m, const std::string& fill,
                       const std::string& stroke, double stroke_width) {
  std::ostringstream e;
  e << "<circle cx=\"" << tx(center.x) << "\" cy=\"" << ty(center.y)
    << "\" r=\"" << px(radius_m) << "\" fill=\"" << fill << "\" stroke=\""
    << stroke << "\" stroke-width=\"" << px(stroke_width) << "\"/>";
  elements_.push_back(e.str());
}

void SvgCanvas::line(Vec2 a, Vec2 b, const std::string& stroke, double width_m,
                     double opacity) {
  std::ostringstream e;
  e << "<line x1=\"" << tx(a.x) << "\" y1=\"" << ty(a.y) << "\" x2=\""
    << tx(b.x) << "\" y2=\"" << ty(b.y) << "\" stroke=\"" << stroke
    << "\" stroke-width=\"" << px(width_m) << "\" stroke-opacity=\"" << opacity
    << "\"/>";
  elements_.push_back(e.str());
}

void SvgCanvas::polyline(const std::vector<Vec2>& points,
                         const std::string& stroke, double width_m,
                         double opacity) {
  if (points.size() < 2) return;
  std::ostringstream e;
  e << "<polyline fill=\"none\" stroke=\"" << stroke << "\" stroke-width=\""
    << px(width_m) << "\" stroke-opacity=\"" << opacity << "\" points=\"";
  for (Vec2 p : points) e << tx(p.x) << ',' << ty(p.y) << ' ';
  e << "\"/>";
  elements_.push_back(e.str());
}

void SvgCanvas::rect(const Rect& r, const std::string& fill,
                     const std::string& stroke, double stroke_width_m,
                     double opacity) {
  std::ostringstream e;
  e << "<rect x=\"" << tx(r.lo().x) << "\" y=\"" << ty(r.hi().y)
    << "\" width=\"" << px(r.width()) << "\" height=\"" << px(r.height())
    << "\" fill=\"" << fill << "\" fill-opacity=\"" << opacity
    << "\" stroke=\"" << stroke << "\" stroke-width=\"" << px(stroke_width_m)
    << "\"/>";
  elements_.push_back(e.str());
}

void SvgCanvas::polygon(const Polygon& p, const std::string& fill,
                        const std::string& stroke, double stroke_width_m,
                        double opacity) {
  if (p.size() < 3) return;
  std::ostringstream e;
  e << "<polygon fill=\"" << fill << "\" fill-opacity=\"" << opacity
    << "\" stroke=\"" << stroke << "\" stroke-width=\"" << px(stroke_width_m)
    << "\" points=\"";
  for (Vec2 v : p.vertices()) e << tx(v.x) << ',' << ty(v.y) << ' ';
  e << "\"/>";
  elements_.push_back(e.str());
}

void SvgCanvas::text(Vec2 anchor, const std::string& content, double size_m,
                     const std::string& fill) {
  std::ostringstream e;
  e << "<text x=\"" << tx(anchor.x) << "\" y=\"" << ty(anchor.y)
    << "\" font-size=\"" << px(size_m) << "\" fill=\"" << fill << "\">"
    << content << "</text>";
  elements_.push_back(e.str());
}

std::string SvgCanvas::render() const {
  std::ostringstream out;
  out << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
      << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\""
      << px(world_.width()) << "\" height=\"" << px(world_.height())
      << "\" viewBox=\"0 0 " << px(world_.width()) << ' '
      << px(world_.height()) << "\">\n";
  for (const auto& e : elements_) out << "  " << e << '\n';
  out << "</svg>\n";
  return out.str();
}

bool SvgCanvas::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << render();
  return static_cast<bool>(out);
}

}  // namespace spr
