#pragma once

/// \file log.h
/// Minimal leveled logging for the library and tools.
///
/// The library itself logs nothing by default; examples and benches can raise
/// the level. Thread-compatible (no internal locking; callers serialize).

#include <iosfwd>
#include <sstream>
#include <string>
#include <string_view>

namespace spr {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are discarded.
LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

/// Parse "debug"/"info"/"warn"/"error"/"off"; returns kInfo on unknown input.
LogLevel parse_log_level(std::string_view text) noexcept;

namespace detail {
/// Emits one formatted line to stderr. Used by the Logger sink below.
void emit_log_line(LogLevel level, const std::string& message);
}  // namespace detail

/// RAII one-line log statement: `Logger(LogLevel::kInfo) << "n=" << n;`
class Logger {
 public:
  explicit Logger(LogLevel level) : level_(level), enabled_(level >= log_level()) {}
  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;
  ~Logger() {
    if (enabled_) detail::emit_log_line(level_, stream_.str());
  }

  template <typename T>
  Logger& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

inline Logger log_debug() { return Logger(LogLevel::kDebug); }
inline Logger log_info() { return Logger(LogLevel::kInfo); }
inline Logger log_warn() { return Logger(LogLevel::kWarn); }
inline Logger log_error() { return Logger(LogLevel::kError); }

}  // namespace spr
