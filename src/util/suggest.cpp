#include "util/suggest.h"

#include <algorithm>

namespace spr {

std::size_t edit_distance(std::string_view a, std::string_view b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diagonal = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      std::size_t previous = row[j];
      std::size_t substitute = diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, substitute});
      diagonal = previous;
    }
  }
  return row[b.size()];
}

std::vector<std::string> near_matches(
    std::string_view name, const std::vector<std::string>& candidates) {
  // Rank by: prefix match (best), then small edit distance relative to the
  // query length.
  std::vector<std::pair<std::size_t, std::string>> ranked;
  for (const std::string& candidate : candidates) {
    std::size_t score;
    if (!name.empty() &&
        std::string_view(candidate).substr(0, name.size()) == name) {
      score = 0;
    } else {
      std::size_t distance = edit_distance(name, candidate);
      std::size_t budget = std::max<std::size_t>(2, name.size() / 3);
      if (distance > budget) continue;
      score = distance;
    }
    ranked.emplace_back(score, candidate);
  }
  std::stable_sort(
      ranked.begin(), ranked.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<std::string> out;
  for (auto& [score, suggestion] : ranked) out.push_back(std::move(suggestion));
  return out;
}

}  // namespace spr
