#pragma once

/// \file check.h
/// Checked invariants: `SPR_CHECK` / `SPR_DCHECK` with formatted context and
/// a test-friendly failure hook.
///
///   SPR_CHECK(offsets.size() == n + 1, "n=", n, " offsets=", offsets.size());
///   SPR_DCHECK(fifo_count_ < fifo_cap_, "ring overflow at key ", k);
///
/// `SPR_CHECK` is always on: API-boundary preconditions cheap enough for
/// Release (size agreements, handle validity). `SPR_DCHECK` compiles to a
/// no-op unless `SPR_DCHECK_ENABLED` is defined — the build system defines
/// it for Debug and sanitizer (`SPR_SANITIZE`) builds — and is for the hot
/// invariants the kernels otherwise trust silently (ring occupancy, pend-bit
/// consistency, halo replica agreement). Sweep-scale scans that only exist
/// to *verify* an invariant should additionally guard on
/// `spr::kDchecksEnabled` so Release builds drop the whole loop.
///
/// On failure the message is formatted as
/// `file:line: SPR_CHECK(expr) failed: <context>` and handed to the failure
/// handler. The default handler writes to stderr and aborts; tests install a
/// throwing handler (`ScopedCheckHandler` + `throwing_check_handler`) to
/// assert that a violated invariant is caught without killing the process.

#include <sstream>
#include <stdexcept>
#include <string>

namespace spr {

/// Compile-time view of whether SPR_DCHECK expands to a real check. Use to
/// guard verification-only loops: `if (kDchecksEnabled) { ... }` dead-code
/// eliminates in Release.
#ifdef SPR_DCHECK_ENABLED
inline constexpr bool kDchecksEnabled = true;
#else
inline constexpr bool kDchecksEnabled = false;
#endif

/// Thrown by `throwing_check_handler` (never by the default handler).
class CheckError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Receives the fully formatted failure message. Returning is allowed (the
/// caller aborts afterwards); throwing propagates to the check site.
using CheckHandler = void (*)(const std::string& message);

/// Installs `handler` (nullptr restores the abort default) and returns the
/// previous one. Not thread-safe against concurrent failures by design —
/// only tests swap handlers, and they do it single-threaded.
CheckHandler set_check_handler(CheckHandler handler) noexcept;

/// A handler that throws `CheckError` with the message; for negative tests.
void throwing_check_handler(const std::string& message);

/// RAII installer so a test cannot leak a throwing handler into later tests.
class ScopedCheckHandler {
 public:
  explicit ScopedCheckHandler(CheckHandler handler) noexcept
      : previous_(set_check_handler(handler)) {}
  ~ScopedCheckHandler() { set_check_handler(previous_); }
  ScopedCheckHandler(const ScopedCheckHandler&) = delete;
  ScopedCheckHandler& operator=(const ScopedCheckHandler&) = delete;

 private:
  CheckHandler previous_;
};

/// Formats and dispatches one failure; aborts if the handler returns.
[[noreturn]] void check_failed(const char* file, int line, const char* expr,
                               const std::string& context);

namespace detail {

inline std::string check_context() { return {}; }

template <typename... Args>
std::string check_context(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

}  // namespace detail
}  // namespace spr

#define SPR_CHECK(cond, ...)                                    \
  do {                                                          \
    if (!(cond)) {                                              \
      ::spr::check_failed(__FILE__, __LINE__, #cond,            \
                          ::spr::detail::check_context(__VA_ARGS__)); \
    }                                                           \
  } while (false)

#ifdef SPR_DCHECK_ENABLED
#define SPR_DCHECK(cond, ...) SPR_CHECK(cond, ##__VA_ARGS__)
#else
// Odr-uses nothing and evaluates nothing, but keeps the operands
// type-checked so a Release build cannot rot a DCHECK expression.
#define SPR_DCHECK(cond, ...)                  \
  do {                                         \
    if (false) {                               \
      (void)sizeof((cond) ? 1 : 0);            \
    }                                          \
  } while (false)
#endif
