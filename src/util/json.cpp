#include "util/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace spr {

namespace {

void append_escaped(std::string& out, std::string_view text) {
  out.push_back('"');
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

void JsonWriter::comma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!first_in_scope_.back()) out_.push_back(',');
  first_in_scope_.back() = false;
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_.push_back('{');
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_.push_back('}');
  first_in_scope_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_.push_back('[');
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_.push_back(']');
  first_in_scope_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  comma();
  append_escaped(out_, name);
  out_.push_back(':');
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  comma();
  append_escaped(out_, text);
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  comma();
  if (!std::isfinite(number)) {
    out_ += "null";  // JSON has no Inf/NaN
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", number);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  comma();
  out_ += std::to_string(number);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  comma();
  out_ += std::to_string(number);
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  comma();
  out_ += flag ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma();
  out_ += "null";
  return *this;
}

bool JsonWriter::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  bool ok = std::fwrite(out_.data(), 1, out_.size(), f) == out_.size();
  ok = std::fputc('\n', f) != EOF && ok;
  ok = std::fclose(f) == 0 && ok;
  return ok;
}

// ==================================================================
// JsonValue
// ==================================================================

namespace {
const JsonValue kNullValue{};
}  // namespace

JsonValue JsonValue::array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

JsonValue JsonValue::of(bool flag) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = flag;
  return v;
}

JsonValue JsonValue::of(double number) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = number;
  v.repr_ = NumRepr::kDouble;
  return v;
}

JsonValue JsonValue::of(std::int64_t number) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = static_cast<double>(number);
  v.int_ = number;
  v.repr_ = NumRepr::kInt64;
  return v;
}

JsonValue JsonValue::of(std::uint64_t number) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = static_cast<double>(number);
  v.uint_ = number;
  v.repr_ = NumRepr::kUint64;
  return v;
}

JsonValue JsonValue::of(std::string_view text) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::string(text);
  return v;
}

JsonValue& JsonValue::push(JsonValue item) {
  if (kind_ != Kind::kArray) *this = array();
  items_.push_back(std::move(item));
  return *this;
}

JsonValue& JsonValue::set(std::string key, JsonValue value) {
  if (kind_ != Kind::kObject) *this = object();
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
  return *this;
}

bool JsonValue::as_bool(bool fallback) const noexcept {
  return kind_ == Kind::kBool ? bool_ : fallback;
}

double JsonValue::as_double(double fallback) const noexcept {
  if (kind_ != Kind::kNumber) return fallback;
  switch (repr_) {
    case NumRepr::kInt64: return static_cast<double>(int_);
    case NumRepr::kUint64: return static_cast<double>(uint_);
    default: return number_;
  }
}

std::int64_t JsonValue::as_int64(std::int64_t fallback) const noexcept {
  if (kind_ != Kind::kNumber) return fallback;
  switch (repr_) {
    case NumRepr::kInt64: return int_;
    case NumRepr::kUint64:
      return uint_ <= static_cast<std::uint64_t>(INT64_MAX)
                 ? static_cast<std::int64_t>(uint_)
                 : fallback;
    default:
      // Range-checked: casting an out-of-range double is UB. 2^63 is
      // exactly representable, so [-2^63, 2^63) is the safe window.
      return std::isfinite(number_) && number_ >= -9223372036854775808.0 &&
                     number_ < 9223372036854775808.0
                 ? static_cast<std::int64_t>(number_)
                 : fallback;
  }
}

std::uint64_t JsonValue::as_uint64(std::uint64_t fallback) const noexcept {
  if (kind_ != Kind::kNumber) return fallback;
  switch (repr_) {
    case NumRepr::kInt64:
      return int_ >= 0 ? static_cast<std::uint64_t>(int_) : fallback;
    case NumRepr::kUint64: return uint_;
    default:
      // Range-checked as in as_int64: [0, 2^64) casts safely.
      return std::isfinite(number_) && number_ >= 0.0 &&
                     number_ < 18446744073709551616.0
                 ? static_cast<std::uint64_t>(number_)
                 : fallback;
  }
}

const std::string& JsonValue::as_string() const noexcept {
  static const std::string kEmpty;
  return kind_ == Kind::kString ? string_ : kEmpty;
}

std::size_t JsonValue::size() const noexcept {
  if (kind_ == Kind::kArray) return items_.size();
  if (kind_ == Kind::kObject) return members_.size();
  return 0;
}

const JsonValue& JsonValue::at(std::size_t index) const noexcept {
  if (kind_ != Kind::kArray || index >= items_.size()) return kNullValue;
  return items_[index];
}

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::get(std::string_view key) const noexcept {
  const JsonValue* v = find(key);
  return v != nullptr ? *v : kNullValue;
}

void JsonValue::write(JsonWriter& w) const {
  switch (kind_) {
    case Kind::kNull: w.null(); break;
    case Kind::kBool: w.value(bool_); break;
    case Kind::kNumber:
      switch (repr_) {
        case NumRepr::kInt64: w.value(int_); break;
        case NumRepr::kUint64: w.value(uint_); break;
        default: w.value(number_);
      }
      break;
    case Kind::kString: w.value(string_); break;
    case Kind::kArray:
      w.begin_array();
      for (const auto& item : items_) item.write(w);
      w.end_array();
      break;
    case Kind::kObject:
      w.begin_object();
      for (const auto& [k, v] : members_) {
        w.key(k);
        v.write(w);
      }
      w.end_object();
      break;
  }
}

std::string JsonValue::dump() const {
  JsonWriter w;
  write(w);
  return w.str();
}

// ------------------------------------------------------------------ parser

/// Strict, bounds-checked recursive-descent parser. Keeps a byte cursor
/// into the input view; every advance checks the remaining length.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool parse_document(JsonValue& out, std::string* error) {
    skip_ws();
    if (!parse_value(out, 0)) {
      if (error != nullptr) *error = error_ + " at byte " + std::to_string(pos_);
      return false;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      if (error != nullptr) {
        *error = "trailing characters at byte " + std::to_string(pos_);
      }
      return false;
    }
    return true;
  }

 private:
  static constexpr int kMaxDepth = 200;

  bool fail(const char* message) {
    if (error_.empty()) error_ = message;
    return false;
  }

  bool eof() const noexcept { return pos_ >= text_.size(); }
  char peek() const noexcept { return text_[pos_]; }

  void skip_ws() {
    while (!eof()) {
      char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (eof()) return fail("unexpected end of input");
    switch (peek()) {
      case 'n':
        if (!consume_literal("null")) return fail("invalid literal");
        out = JsonValue();
        return true;
      case 't':
        if (!consume_literal("true")) return fail("invalid literal");
        out = JsonValue::of(true);
        return true;
      case 'f':
        if (!consume_literal("false")) return fail("invalid literal");
        out = JsonValue::of(false);
        return true;
      case '"': {
        std::string s;
        if (!parse_string(s)) return false;
        out = JsonValue::of(std::string_view(s));
        return true;
      }
      case '[': return parse_array(out, depth);
      case '{': return parse_object(out, depth);
      default: return parse_number(out);
    }
  }

  bool parse_array(JsonValue& out, int depth) {
    ++pos_;  // '['
    out = JsonValue::array();
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue item;
      skip_ws();
      if (!parse_value(item, depth + 1)) return false;
      out.push(std::move(item));
      skip_ws();
      if (eof()) return fail("unterminated array");
      char c = peek();
      ++pos_;
      if (c == ']') return true;
      if (c != ',') return fail("expected ',' or ']' in array");
    }
  }

  bool parse_object(JsonValue& out, int depth) {
    ++pos_;  // '{'
    out = JsonValue::object();
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (eof() || peek() != '"') return fail("expected object key");
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (eof() || peek() != ':') return fail("expected ':' after key");
      ++pos_;
      skip_ws();
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      // Duplicate keys: last one wins (set replaces), like most readers.
      out.set(std::move(key), std::move(value));
      skip_ws();
      if (eof()) return fail("unterminated object");
      char c = peek();
      ++pos_;
      if (c == '}') return true;
      if (c != ',') return fail("expected ',' or '}' in object");
    }
  }

  void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool parse_hex4(std::uint32_t& out) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_ + static_cast<std::size_t>(i)];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<std::uint32_t>(c - 'A' + 10);
      else return fail("invalid \\u escape");
    }
    pos_ += 4;
    out = value;
    return true;
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (true) {
      if (eof()) return fail("unterminated string");
      char c = peek();
      ++pos_;
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (eof()) return fail("unterminated escape");
      char e = peek();
      ++pos_;
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          std::uint32_t cp = 0;
          if (!parse_hex4(cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return fail("lone high surrogate");
            }
            pos_ += 2;
            std::uint32_t low = 0;
            if (!parse_hex4(low)) return false;
            if (low < 0xDC00 || low > 0xDFFF) return fail("invalid surrogate pair");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("lone low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: return fail("invalid escape character");
      }
    }
  }

  bool parse_number(JsonValue& out) {
    std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    if (eof() || peek() < '0' || peek() > '9') return fail("invalid number");
    if (peek() == '0') {
      ++pos_;
    } else {
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    bool integral = true;
    if (!eof() && peek() == '.') {
      integral = false;
      ++pos_;
      if (eof() || peek() < '0' || peek() > '9') return fail("digits expected after '.'");
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      integral = false;
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || peek() < '0' || peek() > '9') return fail("digits expected in exponent");
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    if (integral) {
      std::int64_t i = 0;
      auto [p, ec] = std::from_chars(first, last, i);
      if (ec == std::errc() && p == last) {
        // "-0" must stay a negative-zero double to round-trip bit-exactly.
        out = (i == 0 && *first == '-') ? JsonValue::of(-0.0)
                                        : JsonValue::of(i);
        return true;
      }
      if (*first != '-') {
        std::uint64_t u = 0;
        auto [pu, ecu] = std::from_chars(first, last, u);
        if (ecu == std::errc() && pu == last) {
          out = JsonValue::of(u);
          return true;
        }
      }
      // Integer too large for 64 bits: fall through to double.
    }
    double d = 0.0;
    auto [pd, ecd] = std::from_chars(first, last, d);
    if (ecd == std::errc{} && pd == last) {
      out = JsonValue::of(d);
      return true;
    }
    if (ecd == std::errc::result_out_of_range) {
      // from_chars leaves the output unmodified here; strtod gives the
      // IEEE-correct result for the rare out-of-range token (+-HUGE_VAL on
      // overflow, signed zero on underflow). JSON allows the token.
      std::string token(first, last);
      out = JsonValue::of(std::strtod(token.c_str(), nullptr));
      return true;
    }
    return fail("invalid number");
  }

  // spr-analyze: allow(view-lifetime) parser is a stack local consumed
  // inside JsonValue::parse before the text argument goes out of scope
  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

bool JsonValue::parse(std::string_view text, JsonValue& out,
                      std::string* error) {
  JsonParser parser(text);
  JsonValue result;
  if (!parser.parse_document(result, error)) return false;
  out = std::move(result);
  return true;
}

bool JsonValue::parse_file(const std::string& path, JsonValue& out,
                           std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::string contents;
  char buf[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    contents.append(buf, got);
  }
  bool read_ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!read_ok) {
    if (error != nullptr) *error = "read error on " + path;
    return false;
  }
  return parse(contents, out, error);
}

}  // namespace spr
