#include "util/json.h"

#include <cmath>
#include <cstdio>

namespace spr {

namespace {

void append_escaped(std::string& out, std::string_view text) {
  out.push_back('"');
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

void JsonWriter::comma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!first_in_scope_.back()) out_.push_back(',');
  first_in_scope_.back() = false;
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_.push_back('{');
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_.push_back('}');
  first_in_scope_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_.push_back('[');
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_.push_back(']');
  first_in_scope_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  comma();
  append_escaped(out_, name);
  out_.push_back(':');
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  comma();
  append_escaped(out_, text);
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  comma();
  if (!std::isfinite(number)) {
    out_ += "null";  // JSON has no Inf/NaN
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", number);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  comma();
  out_ += std::to_string(number);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  comma();
  out_ += std::to_string(number);
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  comma();
  out_ += flag ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma();
  out_ += "null";
  return *this;
}

bool JsonWriter::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  bool ok = std::fwrite(out_.data(), 1, out_.size(), f) == out_.size();
  ok = std::fputc('\n', f) != EOF && ok;
  ok = std::fclose(f) == 0 && ok;
  return ok;
}

}  // namespace spr
