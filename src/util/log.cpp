#include "util/log.h"

#include <atomic>
#include <cstdio>

namespace spr {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel parse_log_level(std::string_view text) noexcept {
  if (text == "debug") return LogLevel::kDebug;
  if (text == "info") return LogLevel::kInfo;
  if (text == "warn") return LogLevel::kWarn;
  if (text == "error") return LogLevel::kError;
  if (text == "off") return LogLevel::kOff;
  return LogLevel::kInfo;
}

namespace detail {
void emit_log_line(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "[spr:%s] %s\n", level_name(level), message.c_str());
}
}  // namespace detail

}  // namespace spr
