#pragma once

/// \file flat_map.h
/// FlatMap64: a minimal open-addressed hash map from 64-bit keys to small
/// trivially-copyable values. The hot simulators key on dense synthetic
/// 64-bit ids — directed-link keys (`from * n + to` in the FIFO link-delay
/// model) and exact-double-bit tick timestamps (sim/tick_scheduler.h) —
/// where `std::unordered_map`'s node allocations and pointer chasing
/// dominate at 10^5-10^6 entries. This is a single flat slot array with
/// linear probing: one allocation per growth, no per-entry nodes, and
/// lookups touch one cache line in the common case.
///
/// Determinism: the map is lookup-only by design — it exposes no
/// iteration, so no code path can depend on slot order (the determinism
/// lint's unordered-iteration rule has nothing to bite on).
///
/// The all-ones key is reserved as the empty-slot sentinel; it cannot be
/// inserted (SPR_DCHECK). Real keys never reach it: link keys are bounded
/// by node_count^2 and double-bit keys of finite positive times are never
/// all-ones (that bit pattern is a NaN).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/check.h"

namespace spr {

template <typename Value>
class FlatMap64 {
 public:
  static constexpr std::uint64_t kEmptyKey = ~std::uint64_t{0};

  FlatMap64() = default;

  /// Pre-sizes the table for about `expected` entries without rehashing.
  explicit FlatMap64(std::size_t expected) { reserve(expected); }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  /// Ensures capacity for `expected` entries under the load-factor cap.
  void reserve(std::size_t expected) {
    std::size_t needed = slots_for(expected);
    if (needed > slots_.size()) rehash(needed);
  }

  /// The value at `key`, inserting `fallback` first when absent. The
  /// reference stays valid until the next insertion.
  Value& find_or_insert(std::uint64_t key, const Value& fallback) {
    SPR_DCHECK(key != kEmptyKey, "FlatMap64: sentinel key inserted");
    if (slots_.empty() || (size_ + 1) * 4 > slots_.size() * 3) {
      rehash(slots_for(size_ + 1));
    }
    std::size_t i = probe(key);
    if (slots_[i].key == kEmptyKey) {
      slots_[i].key = key;
      slots_[i].value = fallback;
      ++size_;
    }
    return slots_[i].value;
  }

  /// The value at `key`, or null when absent.
  Value* find(std::uint64_t key) noexcept {
    if (slots_.empty()) return nullptr;
    std::size_t i = probe(key);
    return slots_[i].key == kEmptyKey ? nullptr : &slots_[i].value;
  }
  const Value* find(std::uint64_t key) const noexcept {
    return const_cast<FlatMap64*>(this)->find(key);
  }

  /// Drops every entry, keeping the slot array's capacity.
  void clear() noexcept {
    for (Slot& slot : slots_) slot.key = kEmptyKey;
    size_ = 0;
  }

 private:
  struct Slot {
    std::uint64_t key = kEmptyKey;
    Value value{};
  };

  /// Smallest power-of-two slot count keeping `entries` under 3/4 load.
  static std::size_t slots_for(std::size_t entries) noexcept {
    std::size_t slots = 16;
    while (entries * 4 > slots * 3) slots *= 2;
    return slots;
  }

  /// First slot holding `key` or empty, by linear probe from the key hash
  /// (Fibonacci-mixed so dense sequential keys spread across the table).
  std::size_t probe(std::uint64_t key) const noexcept {
    std::uint64_t h = key * 0x9E3779B97F4A7C15ULL;
    std::size_t mask = slots_.size() - 1;
    std::size_t i = static_cast<std::size_t>(h >> 32) & mask;
    while (slots_[i].key != kEmptyKey && slots_[i].key != key) {
      i = (i + 1) & mask;
    }
    return i;
  }

  void rehash(std::size_t new_slots) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_slots, Slot{});
    for (const Slot& slot : old) {
      if (slot.key == kEmptyKey) continue;
      std::size_t i = probe(slot.key);
      slots_[i] = slot;
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

}  // namespace spr
