#pragma once

/// \file svg.h
/// Minimal SVG writer for publication-style renderings of deployments,
/// unsafe areas, estimates, and routed paths (the vector counterpart of
/// AsciiCanvas). Examples write .svg files the user can open directly.
///
/// World coordinates map to the viewBox with y flipped so that world +y is
/// up, matching the paper's figures.

#include <string>
#include <vector>

#include "geometry/polygon.h"
#include "geometry/rect.h"
#include "geometry/vec2.h"

namespace spr {

/// Accumulates SVG elements over a world-space viewport.
class SvgCanvas {
 public:
  /// Canvas covering `world`, rendered at `pixels_per_meter` scale.
  explicit SvgCanvas(Rect world, double pixels_per_meter = 4.0);

  /// Styling is CSS-like; colors are any SVG color string.
  void circle(Vec2 center, double radius_m, const std::string& fill,
              const std::string& stroke = "none", double stroke_width = 0.0);
  void line(Vec2 a, Vec2 b, const std::string& stroke, double width_m,
            double opacity = 1.0);
  void polyline(const std::vector<Vec2>& points, const std::string& stroke,
                double width_m, double opacity = 1.0);
  void rect(const Rect& r, const std::string& fill, const std::string& stroke,
            double stroke_width_m, double opacity = 1.0);
  void polygon(const Polygon& p, const std::string& fill,
               const std::string& stroke, double stroke_width_m,
               double opacity = 1.0);
  void text(Vec2 anchor, const std::string& content, double size_m,
            const std::string& fill = "black");

  /// Number of elements emitted so far.
  std::size_t element_count() const noexcept { return elements_.size(); }

  /// Serializes the full document.
  std::string render() const;

  /// Renders and writes to `path`; returns false on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  double px(double meters) const noexcept { return meters * scale_; }
  double tx(double world_x) const noexcept;
  double ty(double world_y) const noexcept;

  Rect world_;
  double scale_;
  std::vector<std::string> elements_;
};

}  // namespace spr
