#include "util/check.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace spr {

namespace {

std::atomic<CheckHandler> g_handler{nullptr};

}  // namespace

CheckHandler set_check_handler(CheckHandler handler) noexcept {
  return g_handler.exchange(handler, std::memory_order_acq_rel);
}

void throwing_check_handler(const std::string& message) {
  throw CheckError(message);
}

void check_failed(const char* file, int line, const char* expr,
                  const std::string& context) {
  std::string message;
  message.reserve(64 + context.size());
  message.append(file);
  message.append(":");
  message.append(std::to_string(line));
  message.append(": SPR_CHECK(");
  message.append(expr);
  message.append(") failed");
  if (!context.empty()) {
    message.append(": ");
    message.append(context);
  }
  if (CheckHandler handler = g_handler.load(std::memory_order_acquire)) {
    handler(message);  // may throw; propagates to the check site
  }
  std::fprintf(stderr, "%s\n", message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace spr
