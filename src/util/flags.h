#pragma once

/// \file flags.h
/// Tiny declarative command-line flag parser used by examples and benches.
///
/// Supports `--name=value`, `--name value`, and boolean `--name` /
/// `--no-name`. Unknown flags are reported; `--help` prints usage.

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace spr {

/// A set of named flags bound to caller-owned variables.
class FlagSet {
 public:
  explicit FlagSet(std::string program_description);

  /// Registers a flag bound to `*target`. The current value of `*target`
  /// is shown as the default in `--help`.
  void add_int(std::string name, int* target, std::string help);
  void add_double(std::string name, double* target, std::string help);
  void add_bool(std::string name, bool* target, std::string help);
  void add_string(std::string name, std::string* target, std::string help);
  void add_uint64(std::string name, unsigned long long* target, std::string help);

  /// Parses argv. Returns false (after printing a message) on `--help` or on
  /// a malformed/unknown flag. Leftover positional args are appended to
  /// `positional()`.
  bool parse(int argc, const char* const* argv);

  const std::vector<std::string>& positional() const noexcept { return positional_; }

  /// Renders the usage text (also printed by `--help`).
  std::string usage() const;

 private:
  struct Flag {
    std::string help;
    std::string default_value;
    bool is_bool = false;
    std::function<bool(std::string_view)> set;  // returns false on parse error
  };

  bool apply(const std::string& name, std::string_view value);

  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace spr
