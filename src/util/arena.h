#pragma once

/// \file arena.h
/// A small monotonic arena: bump-pointer allocation out of geometrically
/// growing blocks, freed all at once. Built for per-cell scratch in the
/// sweep engine — a cell allocates its pair buffer and per-packet scratch
/// thousands of times across a sweep, and the arena turns each of those
/// into a pointer bump plus one `reset()` per cell (the high-water block
/// is kept, so steady-state cells allocate from the general heap exactly
/// once).
///
/// Not thread-safe: one arena per worker/cell, which is exactly how the
/// sweep uses it. Individual deallocation is a no-op (monotonic);
/// destructors of arena-backed containers still run, they just return no
/// memory.
///
///   Arena arena;
///   ArenaVector<std::pair<NodeId, NodeId>> pairs(arena.allocator<...>());
///   ... fill, use ...
///   arena.reset();  // next cell reuses the same block

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace spr {

class Arena {
 public:
  /// `first_block` is the size of the first block actually allocated
  /// (lazily, on first use); subsequent blocks double.
  explicit Arena(std::size_t first_block = 16 * 1024)
      : next_block_size_(first_block < 64 ? 64 : first_block) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocates `bytes` aligned to `align` (a power of two). Never
  /// returns null; falls back to a fresh block when the current one is
  /// exhausted.
  void* allocate(std::size_t bytes, std::size_t align) {
    std::uintptr_t p = (cursor_ + (align - 1)) & ~(align - 1);
    if (p + bytes > limit_) {
      grow(bytes + align);
      p = (cursor_ + (align - 1)) & ~(align - 1);
    }
    cursor_ = p + bytes;
    bytes_allocated_ += bytes;
    return reinterpret_cast<void*>(p);
  }

  /// Drops every allocation. A fragmented arena (several blocks) is
  /// consolidated into one block covering their combined size, so a
  /// repeated identical workload fits the retained block and stops
  /// touching the general heap from the second pass on.
  void reset() {
    if (bytes_allocated_ > high_water_) high_water_ = bytes_allocated_;
    if (blocks_.size() > 1) {
      std::size_t total = capacity();
      blocks_.clear();
      blocks_.push_back(Block{std::make_unique<std::byte[]>(total), total});
    }
    if (!blocks_.empty()) {
      cursor_ = reinterpret_cast<std::uintptr_t>(blocks_.back().data.get());
      limit_ = cursor_ + blocks_.back().size;
    }
    bytes_allocated_ = 0;
  }

  /// Total bytes handed out since construction / the last reset (excludes
  /// alignment padding).
  std::size_t bytes_allocated() const noexcept { return bytes_allocated_; }

  /// The largest `bytes_allocated()` any epoch (reset-to-reset span) has
  /// reached, including the current one. This is the observable form of the
  /// zero-steady-state-heap claim: once the retained block covers the high
  /// water, later epochs allocate no general-heap memory. Tracked in
  /// `reset()` / here rather than per-allocation, so the `allocate` hot
  /// path stays two adds and a compare.
  std::size_t high_water() const noexcept {
    return bytes_allocated_ > high_water_ ? bytes_allocated_ : high_water_;
  }

  /// Total bytes of arena blocks currently held.
  std::size_t capacity() const noexcept {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void grow(std::size_t at_least) {
    std::size_t size = next_block_size_;
    while (size < at_least) size *= 2;
    next_block_size_ = size * 2;
    Block block{std::make_unique<std::byte[]>(size), size};
    cursor_ = reinterpret_cast<std::uintptr_t>(block.data.get());
    limit_ = cursor_ + size;
    blocks_.push_back(std::move(block));
  }

  std::vector<Block> blocks_;
  std::uintptr_t cursor_ = 0;
  std::uintptr_t limit_ = 0;
  std::size_t next_block_size_;
  std::size_t bytes_allocated_ = 0;
  std::size_t high_water_ = 0;
};

/// std-compatible allocator over an Arena. Copies share the arena;
/// deallocate is a no-op. The arena must outlive every container using it.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena& arena) noexcept : arena_(&arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept
      : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, std::size_t) noexcept {}  // monotonic: freed by reset()

  Arena* arena() const noexcept { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& other) const noexcept {
    return arena_ == other.arena();
  }
  template <typename U>
  bool operator!=(const ArenaAllocator<U>& other) const noexcept {
    return arena_ != other.arena();
  }

 private:
  Arena* arena_;
};

/// Vector whose storage (not its elements' own allocations) lives in an
/// arena.
template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

}  // namespace spr
