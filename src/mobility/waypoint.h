#pragma once

/// \file waypoint.h
/// Random-waypoint mobility, the classic model for the "node mobility"
/// dynamic factor the paper lists among hole causes (Section 1). Each node
/// independently picks a destination waypoint in the field, moves toward it
/// at a per-node speed, pauses, and repeats.
///
/// The library treats mobility as a sequence of deployment snapshots: the
/// caller advances the model and rebuilds the derived structures per epoch,
/// matching the paper's periodic information reconstruction.

#include <vector>

#include "deploy/rng.h"
#include "geometry/rect.h"
#include "geometry/vec2.h"
#include "graph/node.h"

namespace spr {

/// Parameters of the random-waypoint process.
struct WaypointConfig {
  Rect field = Rect::from_bounds({0.0, 0.0}, {200.0, 200.0});
  double min_speed_mps = 0.5;
  double max_speed_mps = 2.0;
  double pause_s = 5.0;
};

/// The mobility state of a set of nodes.
class WaypointModel {
 public:
  /// Starts every node at its position in `initial`, pausing (first
  /// waypoint drawn when its pause expires).
  WaypointModel(std::vector<Vec2> initial, WaypointConfig config, Rng rng);

  std::size_t size() const noexcept { return positions_.size(); }
  const std::vector<Vec2>& positions() const noexcept { return positions_; }
  Vec2 position(NodeId u) const noexcept { return positions_[u]; }

  /// Advances the simulation clock by `dt` seconds, moving every node.
  /// Movement is integrated exactly across waypoint changes within `dt`.
  void advance(double dt);

  /// Total meters traveled by node `u` so far.
  double traveled(NodeId u) const noexcept { return traveled_[u]; }

  /// Current simulation time in seconds.
  double now() const noexcept { return now_; }

 private:
  struct NodeState {
    Rng rng{0};  ///< per-node stream: trajectories are independent of the
                 ///< advance() step size and of other nodes
    Vec2 waypoint{};
    double speed = 0.0;
    double pause_remaining = 0.0;
    bool moving = false;
  };

  void pick_waypoint(std::size_t i);

  WaypointConfig config_;
  std::vector<Vec2> positions_;
  std::vector<NodeState> states_;
  std::vector<double> traveled_;
  double now_ = 0.0;
};

}  // namespace spr
