#include "mobility/waypoint.h"

#include <algorithm>

namespace spr {

WaypointModel::WaypointModel(std::vector<Vec2> initial, WaypointConfig config,
                             Rng rng)
    : config_(config),
      positions_(std::move(initial)),
      states_(positions_.size()),
      traveled_(positions_.size(), 0.0) {
  for (std::size_t i = 0; i < states_.size(); ++i) {
    states_[i].rng = rng.fork(i);
    // Desynchronized initial pauses so nodes do not all start moving at once.
    states_[i].pause_remaining = states_[i].rng.uniform(0.0, config_.pause_s);
  }
}

void WaypointModel::pick_waypoint(std::size_t i) {
  NodeState& state = states_[i];
  state.waypoint = {
      state.rng.uniform(config_.field.lo().x, config_.field.hi().x),
      state.rng.uniform(config_.field.lo().y, config_.field.hi().y)};
  state.speed = state.rng.uniform(config_.min_speed_mps, config_.max_speed_mps);
  state.moving = true;
}

void WaypointModel::advance(double dt) {
  now_ += dt;
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    double remaining = dt;
    NodeState& state = states_[i];
    // Consume the time budget through pause / move / arrive transitions.
    int guard = 0;
    while (remaining > 1e-12 && guard++ < 64) {
      if (!state.moving) {
        double pause = std::min(remaining, state.pause_remaining);
        state.pause_remaining -= pause;
        remaining -= pause;
        if (state.pause_remaining <= 1e-12) pick_waypoint(i);
        continue;
      }
      Vec2 to_waypoint = state.waypoint - positions_[i];
      double dist = to_waypoint.norm();
      double step = state.speed * remaining;
      if (step >= dist) {
        // Arrive and start pausing.
        positions_[i] = state.waypoint;
        traveled_[i] += dist;
        remaining -= state.speed > 0.0 ? dist / state.speed : remaining;
        state.moving = false;
        state.pause_remaining = config_.pause_s;
      } else {
        positions_[i] += to_waypoint.normalized() * step;
        traveled_[i] += step;
        remaining = 0.0;
      }
    }
  }
}

}  // namespace spr
