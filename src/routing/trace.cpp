#include "routing/trace.h"

#include <algorithm>
#include <sstream>

namespace spr {

namespace {
const char* phase_name(HopPhase phase) {
  switch (phase) {
    case HopPhase::kGreedy: return "greedy";
    case HopPhase::kBackup: return "backup";
    case HopPhase::kPerimeter: return "perimeter";
  }
  return "?";
}
}  // namespace

RouteTrace::RouteTrace(const UnitDiskGraph& g, const PathResult& result,
                       NodeId dest) {
  Vec2 pd = g.position(dest);
  double total_length = 0.0;
  for (std::size_t i = 0; i + 1 < result.path.size(); ++i) {
    HopRecord hop;
    hop.from = result.path[i];
    hop.to = result.path[i + 1];
    hop.phase = i < result.hop_phases.size() ? result.hop_phases[i]
                                             : HopPhase::kGreedy;
    Vec2 a = g.position(hop.from), b = g.position(hop.to);
    hop.hop_length = distance(a, b);
    hop.progress = distance(a, pd) - distance(b, pd);
    total_length += hop.hop_length;
    hops_.push_back(hop);
  }

  // Detour segmentation: maximal runs of non-greedy hops.
  std::size_t i = 0;
  while (i < hops_.size()) {
    if (hops_[i].phase == HopPhase::kGreedy) {
      ++i;
      continue;
    }
    DetourSegment segment;
    segment.first_hop = i;
    while (i < hops_.size() && hops_[i].phase != HopPhase::kGreedy) {
      segment.length += hops_[i].hop_length;
      segment.net_progress += hops_[i].progress;
      ++segment.hop_count;
      ++i;
    }
    detours_.push_back(segment);
  }

  if (!result.path.empty() && total_length > 0.0) {
    double straight =
        distance(g.position(result.path.front()), g.position(result.path.back()));
    straightness_ = std::min(1.0, straight / total_length);
  }
}

double RouteTrace::detour_length() const noexcept {
  double sum = 0.0;
  for (const auto& d : detours_) sum += d.length;
  return sum;
}

double RouteTrace::worst_regression() const noexcept {
  double worst = 0.0;
  for (const auto& hop : hops_) worst = std::min(worst, hop.progress);
  return -worst;
}

std::string RouteTrace::to_string() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < hops_.size(); ++i) {
    const auto& hop = hops_[i];
    out << i << ": " << hop.from << " -> " << hop.to << " ["
        << phase_name(hop.phase) << "] " << hop.hop_length << "m, progress "
        << hop.progress << "m\n";
  }
  out << detours_.size() << " detour episode(s), " << detour_length()
      << "m total; straightness " << straightness_ << "\n";
  return out.str();
}

std::string RouteTrace::to_csv() const {
  std::ostringstream out;
  out << "hop,from,to,phase,length,progress\n";
  for (std::size_t i = 0; i < hops_.size(); ++i) {
    const auto& hop = hops_[i];
    out << i << ',' << hop.from << ',' << hop.to << ',' << phase_name(hop.phase)
        << ',' << hop.hop_length << ',' << hop.progress << '\n';
  }
  return out.str();
}

}  // namespace spr
