#include "routing/router.h"

namespace spr {

PathResult Router::drive(NodeId s, NodeId d, const RouteOptions& options,
                         PacketHeader& header,
                         std::size_t reserve_hint) const {
  PathResult result;
  if (reserve_hint > 0) {
    result.path.reserve(reserve_hint + 1);
    result.hop_phases.reserve(reserve_hint);
  }
  result.path.push_back(s);
  if (s == d) {
    result.status = RouteStatus::kDelivered;
    return result;
  }
  const std::size_t ttl = options.ttl_factor * std::max<std::size_t>(g_.size(), 1);
  NodeId u = s;
  for (std::size_t hop = 0; hop < ttl; ++hop) {
    Decision decision = select_successor(u, d, header);
    if (decision.hit_local_minimum) ++result.local_minima;
    if (decision.next == kInvalidNode) {
      result.status = RouteStatus::kDeadEnd;
      return result;
    }
    result.length += distance(g_.position(u), g_.position(decision.next));
    result.path.push_back(decision.next);
    result.hop_phases.push_back(decision.phase);
    u = decision.next;
    if (u == d) {
      result.status = RouteStatus::kDelivered;
      return result;
    }
  }
  result.status = RouteStatus::kTtlExpired;
  return result;
}

PathResult Router::route(NodeId s, NodeId d, const RouteOptions& options) const {
  if (s >= g_.size() || d >= g_.size()) {
    return {};  // invalid endpoints: a dead end, never an out-of-bounds walk
  }
  if (s == d) {
    PathResult result;
    result.path.push_back(s);
    result.status = RouteStatus::kDelivered;
    return result;
  }
  auto header = make_header(s, d);
  return drive(s, d, options, *header);
}

bool Router::reset_header(PacketHeader&, NodeId, NodeId) const { return false; }

std::vector<PathResult> Router::route_batch(
    std::span<const std::pair<NodeId, NodeId>> pairs,
    const RouteOptions& options) const {
  std::vector<PathResult> out;
  out.reserve(pairs.size());
  for (auto [s, d] : pairs) out.push_back(route(s, d, options));
  return out;
}

std::vector<PathResult> Router::route_batch_reusing_headers(
    std::span<const std::pair<NodeId, NodeId>> pairs,
    const RouteOptions& options) const {
  std::vector<PathResult> out;
  out.reserve(pairs.size());
  std::unique_ptr<PacketHeader> header;
  std::size_t hint = 0;
  for (auto [s, d] : pairs) {
    if (s >= graph().size() || d >= graph().size()) {  // match route()
      out.emplace_back();
      continue;
    }
    if (s == d) {  // route()'s header-free fast path
      PathResult result;
      result.path.push_back(s);
      result.status = RouteStatus::kDelivered;
      out.push_back(std::move(result));
      continue;
    }
    if (header == nullptr || !reset_header(*header, s, d)) {
      header = make_header(s, d);
    }
    out.push_back(drive(s, d, options, *header, hint));
    hint = out.back().hop_phases.size();
  }
  return out;
}

}  // namespace spr
