#include "routing/router.h"

#include <algorithm>

namespace spr {

RouteStepper::RouteStepper(const Router& router, NodeId s, NodeId d,
                           std::unique_ptr<PacketHeader> owned,
                           PacketHeader* header, std::size_t ttl,
                           std::size_t reserve_hint)
    : router_(&router),
      owned_header_(std::move(owned)),
      header_(header),
      u_(s),
      d_(d),
      ttl_remaining_(ttl),
      in_flight_(true) {
  if (s >= router.g_.size() || d >= router.g_.size()) {
    // Invalid endpoints: an empty dead-end result, exactly route()'s `{}`.
    finish(RouteStatus::kDeadEnd);
    u_ = kInvalidNode;
    return;
  }
  if (reserve_hint > 0) {
    result_.path.reserve(reserve_hint + 1);
    result_.hop_phases.reserve(reserve_hint);
  }
  result_.path.push_back(s);
  if (s == d) {
    finish(RouteStatus::kDelivered);
    return;
  }
  if (ttl_remaining_ == 0) finish(RouteStatus::kTtlExpired);
}

bool RouteStepper::step() {
  if (!in_flight_) return false;
  Router::Decision decision = router_->select_successor(u_, d_, *header_);
  if (decision.hit_local_minimum) ++result_.local_minima;
  if (decision.next == kInvalidNode) {
    finish(RouteStatus::kDeadEnd);
    return false;
  }
  const UnitDiskGraph& g = router_->g_;
  result_.length += distance(g.position(u_), g.position(decision.next));
  if (record_path_) {
    result_.path.push_back(decision.next);
    result_.hop_phases.push_back(decision.phase);
  }
  ++hops_taken_;
  u_ = decision.next;
  if (u_ == d_) {
    finish(RouteStatus::kDelivered);
    return false;
  }
  if (--ttl_remaining_ == 0) {
    finish(RouteStatus::kTtlExpired);
    return false;
  }
  return true;
}

namespace {

/// TTL = ttl_factor * n hops; generous so that only genuine livelock or
/// disconnection trips it.
std::size_t default_ttl(const UnitDiskGraph& g, const RouteOptions& options) {
  return options.ttl_factor * std::max<std::size_t>(g.size(), 1);
}

}  // namespace

std::unique_ptr<RouteStepper> Router::make_stepper(NodeId s, NodeId d,
                                                   const RouteOptions& options,
                                                   std::size_t ttl_limit) const {
  std::size_t ttl = ttl_limit != 0 ? ttl_limit : default_ttl(g_, options);
  std::unique_ptr<PacketHeader> header;
  if (s < g_.size() && d < g_.size() && s != d) header = make_header(s, d);
  PacketHeader* raw = header.get();
  return std::unique_ptr<RouteStepper>(
      // spr-lint: allow(raw-new) RouteStepper's ctor is private to Router
      // (make_unique cannot reach it); ownership transfers immediately.
      new RouteStepper(*this, s, d, std::move(header), raw, ttl, 0));
}

void Router::restart_stepper(RouteStepper& stepper, NodeId s, NodeId d,
                             const RouteOptions& options,
                             std::size_t ttl_limit) const {
  stepper.router_ = this;
  stepper.ttl_remaining_ = ttl_limit != 0 ? ttl_limit : default_ttl(g_, options);
  if (s < g_.size() && d < g_.size() && s != d) {
    // Reuse the slot's header in place; first use of a slot (or a router
    // without reset support) falls back to a fresh header, matching
    // make_stepper's allocation.
    if (stepper.owned_header_ == nullptr ||
        !reset_header(*stepper.owned_header_, s, d)) {
      stepper.owned_header_ = make_header(s, d);
    }
  }
  stepper.header_ = stepper.owned_header_.get();
  // From here this mirrors the private constructor, minus the allocations:
  // the path/phase buffers are cleared but keep their capacity.
  stepper.u_ = s;
  stepper.d_ = d;
  stepper.in_flight_ = true;
  stepper.hops_taken_ = 0;
  stepper.record_path_ = true;
  stepper.result_.status = RouteStatus::kDeadEnd;
  stepper.result_.path.clear();
  stepper.result_.hop_phases.clear();
  stepper.result_.length = 0.0;
  stepper.result_.local_minima = 0;
  if (s >= g_.size() || d >= g_.size()) {
    stepper.finish(RouteStatus::kDeadEnd);
    stepper.u_ = kInvalidNode;
    return;
  }
  stepper.result_.path.push_back(s);
  if (s == d) {
    stepper.finish(RouteStatus::kDelivered);
    return;
  }
  if (stepper.ttl_remaining_ == 0) stepper.finish(RouteStatus::kTtlExpired);
}

PathResult Router::drive(NodeId s, NodeId d, const RouteOptions& options,
                         PacketHeader& header,
                         std::size_t reserve_hint) const {
  RouteStepper stepper(*this, s, d, nullptr, &header, default_ttl(g_, options),
                       reserve_hint);
  while (stepper.step()) {
  }
  return stepper.take_result();
}

PathResult Router::route(NodeId s, NodeId d, const RouteOptions& options) const {
  if (s >= g_.size() || d >= g_.size()) {
    return {};  // invalid endpoints: a dead end, never an out-of-bounds walk
  }
  if (s == d) {
    PathResult result;
    result.path.push_back(s);
    result.status = RouteStatus::kDelivered;
    return result;
  }
  auto header = make_header(s, d);
  return drive(s, d, options, *header);
}

bool Router::reset_header(PacketHeader&, NodeId, NodeId) const { return false; }

std::vector<PathResult> Router::route_batch(
    std::span<const std::pair<NodeId, NodeId>> pairs,
    const RouteOptions& options) const {
  std::vector<PathResult> out;
  out.reserve(pairs.size());
  for (auto [s, d] : pairs) out.push_back(route(s, d, options));
  return out;
}

std::vector<PathResult> Router::route_batch_reusing_headers(
    std::span<const std::pair<NodeId, NodeId>> pairs,
    const RouteOptions& options) const {
  std::vector<PathResult> out;
  out.reserve(pairs.size());
  std::unique_ptr<PacketHeader> header;
  std::size_t hint = 0;
  for (auto [s, d] : pairs) {
    if (s >= graph().size() || d >= graph().size()) {  // match route()
      out.emplace_back();
      continue;
    }
    if (s == d) {  // route()'s header-free fast path
      PathResult result;
      result.path.push_back(s);
      result.status = RouteStatus::kDelivered;
      out.push_back(std::move(result));
      continue;
    }
    if (header == nullptr || !reset_header(*header, s, d)) {
      header = make_header(s, d);
    }
    out.push_back(drive(s, d, options, *header, hint));
    hint = out.back().hop_phases.size();
  }
  return out;
}

}  // namespace spr
