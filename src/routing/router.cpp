#include "routing/router.h"

namespace spr {

PathResult Router::route(NodeId s, NodeId d, const RouteOptions& options) const {
  PathResult result;
  result.path.push_back(s);
  if (s == d) {
    result.status = RouteStatus::kDelivered;
    return result;
  }
  const std::size_t ttl = options.ttl_factor * std::max<std::size_t>(g_.size(), 1);
  auto header = make_header(s, d);
  NodeId u = s;
  for (std::size_t hop = 0; hop < ttl; ++hop) {
    Decision decision = select_successor(u, d, *header);
    if (decision.hit_local_minimum) ++result.local_minima;
    if (decision.next == kInvalidNode) {
      result.status = RouteStatus::kDeadEnd;
      return result;
    }
    result.length += distance(g_.position(u), g_.position(decision.next));
    result.path.push_back(decision.next);
    result.hop_phases.push_back(decision.phase);
    u = decision.next;
    if (u == d) {
      result.status = RouteStatus::kDelivered;
      return result;
    }
  }
  result.status = RouteStatus::kTtlExpired;
  return result;
}

}  // namespace spr
