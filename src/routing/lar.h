#pragma once

/// \file lar.h
/// LAR scheme 1 (Ko & Vaidya, MOBICOM'98) — the paper's reference [8] and
/// the origin of its request zones. The full scheme targets *mobile*
/// destinations: the source only knows the destination's position at some
/// past time t0 and its maximum speed, so the destination now lies inside
/// the *expected zone* (a disc of radius v*(t1-t0) around the old
/// position), and the request zone is the smallest axis-aligned rectangle
/// containing the source and the expected zone.
///
/// The static-destination degenerate case (zero speed or zero elapsed
/// time) collapses to the paper's Z(u,d) rectangles, which is tested.

#include "geometry/rect.h"
#include "routing/router.h"

namespace spr {

/// What the source knows about the destination (carried in the packet
/// header, as in LAR).
struct DestinationEstimate {
  Vec2 last_known{};        ///< L(d) at time t0
  double max_speed = 0.0;   ///< v, meters/second
  double elapsed = 0.0;     ///< t1 - t0, seconds

  double expected_radius() const noexcept { return max_speed * elapsed; }

  /// The expected zone: disc around last_known.
  bool in_expected_zone(Vec2 p) const noexcept {
    return distance(p, last_known) <= expected_radius() + 1e-12;
  }

  /// Request zone seen from `u`: smallest rectangle containing u and the
  /// expected zone (LAR scheme 1's definition).
  Rect request_zone_from(Vec2 u) const noexcept {
    Rect expected = Rect::from_corners(
        {last_known.x - expected_radius(), last_known.y - expected_radius()},
        {last_known.x + expected_radius(), last_known.y + expected_radius()});
    return expected.expanded_to(u);
  }
};

/// LAR scheme 1 router. Forwarding is restricted to the request zone
/// derived from the destination estimate; the estimate is fixed at send
/// time (the paper's LAR does not update it en route). Recovery follows
/// this repository's LGF convention (right-hand perimeter with the
/// closer-than-stuck exit) so LAR and LGF differ only in the zone shape.
class LarRouter final : public Router {
 public:
  /// Routes toward the true node id `d`, but zone decisions use `estimate`
  /// (pass a zero-speed estimate at d's true position for static LAR).
  LarRouter(const UnitDiskGraph& g, DestinationEstimate estimate)
      : Router(g), estimate_(estimate) {}

  std::string_view name() const noexcept override { return "LAR1"; }

  const DestinationEstimate& estimate() const noexcept { return estimate_; }

 protected:
  Decision select_successor(NodeId u, NodeId d,
                            PacketHeader& header) const override;
  std::unique_ptr<PacketHeader> make_header(NodeId s, NodeId d) const override;

 private:
  DestinationEstimate estimate_;
};

}  // namespace spr
