#pragma once

/// \file lgf.h
/// LGF routing (paper Algorithm 1): request-zone-limited greedy forwarding
/// with right-hand perimeter recovery.
///
///   1. If d in N(u), forward to d.
///   2. Determine the request zone Z_k(u,d).
///   3. Greedy: pick v in Z_k(u,d) ∩ N(u) (closest to d).
///   4. Otherwise perimeter: rotate the ray u->d counter-clockwise until the
///      first *untried* node of N(u) is hit.
///
/// "Untried" is per packet: the header carries the set of visited nodes, so
/// perimeter steps never revisit and the walk terminates.

#include "routing/router.h"

namespace spr {

class LgfRouter final : public Router {
 public:
  explicit LgfRouter(const UnitDiskGraph& g) : Router(g) {}

  std::string_view name() const noexcept override { return "LGF"; }

  /// Batched form: reuses one header (and its O(n) visited buffer) across
  /// the whole span instead of reallocating per packet.
  std::vector<PathResult> route_batch(
      std::span<const std::pair<NodeId, NodeId>> pairs,
      const RouteOptions& options = {}) const override;

 protected:
  Decision select_successor(NodeId u, NodeId d,
                            PacketHeader& header) const override;
  std::unique_ptr<PacketHeader> make_header(NodeId s, NodeId d) const override;
  bool reset_header(PacketHeader& header, NodeId s, NodeId d) const override;
};

}  // namespace spr
