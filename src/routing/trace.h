#pragma once

/// \file trace.h
/// Post-hoc analysis of routed paths: per-hop records (phase, geometric
/// progress toward the destination, hop length) and detour segmentation.
/// Used by the examples to explain *where* a path lost its straightness and
/// by tests asserting phase semantics.

#include <string>
#include <vector>

#include "graph/unit_disk.h"
#include "routing/packet.h"

namespace spr {

/// One hop of a trace.
struct HopRecord {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  HopPhase phase = HopPhase::kGreedy;
  double hop_length = 0.0;   ///< meters traveled on this hop
  double progress = 0.0;     ///< reduction of distance-to-d (negative = regress)
};

/// A maximal run of consecutive non-greedy hops (one detour episode).
struct DetourSegment {
  std::size_t first_hop = 0;  ///< index into the trace
  std::size_t hop_count = 0;
  double length = 0.0;        ///< meters spent in the episode
  double net_progress = 0.0;  ///< distance-to-d change over the episode
};

/// Full trace of one routed packet.
class RouteTrace {
 public:
  /// Builds the trace from a result over the graph it was routed on.
  RouteTrace(const UnitDiskGraph& g, const PathResult& result, NodeId dest);

  const std::vector<HopRecord>& hops() const noexcept { return hops_; }
  const std::vector<DetourSegment>& detours() const noexcept { return detours_; }

  /// Total meters spent in non-greedy episodes.
  double detour_length() const noexcept;

  /// Largest distance-to-destination regression over any single hop.
  double worst_regression() const noexcept;

  /// Straightness index: straight-line distance / path length in [0,1]
  /// (1 = perfectly straight); 1 for empty paths.
  double straightness() const noexcept { return straightness_; }

  /// Human-readable rendering, one line per hop.
  std::string to_string() const;

  /// CSV with header: hop,from,to,phase,length,progress.
  std::string to_csv() const;

 private:
  std::vector<HopRecord> hops_;
  std::vector<DetourSegment> detours_;
  double straightness_ = 1.0;
};

}  // namespace spr
