#include "routing/gf.h"

#include <optional>

#include "geometry/angle.h"
#include "geometry/segment.h"
#include "routing/greedy_util.h"

namespace spr {

struct GfRouter::GfHeader final : public PacketHeader {
  enum class Mode { kGreedy, kFace, kBoundary };
  Mode mode = Mode::kGreedy;

  // Face-traversal state (GPSR perimeter).
  Vec2 entry{};          ///< L_p: where the packet entered perimeter mode
  double entry_dist = 0.0;
  NodeId prev = kInvalidNode;
  Vec2 best_cross{};     ///< closest crossing of (entry, d) seen on this walk
  std::size_t face_steps = 0;

  // Boundary-walk state.
  int boundary = -1;
  int direction = +1;    ///< +1 / -1 along the cycle
  int cycle_index = -1;
  std::size_t boundary_steps = 0;
};

GfRouter::GfRouter(const UnitDiskGraph& g, const PlanarOverlay& overlay,
                   const BoundHoleInfo* boundhole, Recovery recovery)
    : Router(g),
      overlay_(&overlay),
      boundhole_(boundhole),
      boundhole_resolved_(true),
      recovery_(recovery) {}

GfRouter::GfRouter(const UnitDiskGraph& g, OverlayProvider overlay,
                   BoundHoleProvider boundhole, Recovery recovery)
    : Router(g),
      overlay_provider_(std::move(overlay)),
      boundhole_provider_(std::move(boundhole)),
      recovery_(recovery) {}

const PlanarOverlay& GfRouter::overlay() const {
  const PlanarOverlay* cached = overlay_.load(std::memory_order_acquire);
  if (cached == nullptr) {
    // Concurrent first hits both invoke the provider; it is memoized
    // (call_once) so they store the same pointer — the race is benign.
    cached = &overlay_provider_();
    overlay_.store(cached, std::memory_order_release);
  }
  return *cached;
}

const BoundHoleInfo* GfRouter::boundhole() const {
  if (!boundhole_resolved_.load(std::memory_order_acquire)) {
    boundhole_.store(boundhole_provider_ ? boundhole_provider_() : nullptr,
                     std::memory_order_relaxed);
    // The release pairs with the acquire above: a reader that sees the
    // flag also sees the pointer stored before it.
    boundhole_resolved_.store(true, std::memory_order_release);
  }
  return boundhole_.load(std::memory_order_relaxed);
}

std::unique_ptr<PacketHeader> GfRouter::make_header(NodeId, NodeId) const {
  return std::make_unique<GfHeader>();
}

bool GfRouter::reset_header(PacketHeader& header, NodeId, NodeId) const {
  static_cast<GfHeader&>(header) = GfHeader{};
  return true;
}

std::vector<PathResult> GfRouter::route_batch(
    std::span<const std::pair<NodeId, NodeId>> pairs,
    const RouteOptions& options) const {
  return route_batch_reusing_headers(pairs, options);
}

Router::Decision GfRouter::select_successor(NodeId u, NodeId d,
                                            PacketHeader& header) const {
  auto& h = static_cast<GfHeader&>(header);
  const UnitDiskGraph& g = graph();
  Vec2 dest = g.position(d);

  if (g.are_neighbors(u, d)) {
    h.mode = GfHeader::Mode::kGreedy;
    return {d, HopPhase::kGreedy, false};
  }

  // Perimeter exit rule: resume greedy once strictly closer than the entry.
  if (h.mode != GfHeader::Mode::kGreedy &&
      distance(g.position(u), dest) < h.entry_dist) {
    h.mode = GfHeader::Mode::kGreedy;
  }

  if (h.mode == GfHeader::Mode::kGreedy) {
    if (NodeId v = greedy_successor(g, u, dest); v != kInvalidNode) {
      return {v, HopPhase::kGreedy, false};
    }
    // Local minimum: enter recovery.
    h.entry = g.position(u);
    h.entry_dist = distance(h.entry, dest);
    h.best_cross = h.entry;
    h.prev = kInvalidNode;
    h.face_steps = 0;
    h.boundary_steps = 0;
    if (recovery_ == Recovery::kBoundHole && boundhole() != nullptr &&
        boundhole()->boundary_of(u) != -1) {
      h.mode = GfHeader::Mode::kBoundary;
      h.boundary = boundhole()->boundary_of(u);
      h.cycle_index = boundhole()->cycle_position(u);
      // Walk the side of the hole facing the destination: step to whichever
      // cycle neighbor is first by right hand w.r.t. the ray u->d.
      const auto& cycle = boundhole()->boundaries()[static_cast<size_t>(h.boundary)].cycle;
      int sz = static_cast<int>(cycle.size());
      NodeId fwd = cycle[static_cast<size_t>((h.cycle_index + 1) % sz)];
      NodeId back = cycle[static_cast<size_t>((h.cycle_index - 1 + sz) % sz)];
      double start = bearing(g.position(u), dest);
      double sweep_fwd = ccw_delta(start, bearing(g.position(u), g.position(fwd)));
      double sweep_back = ccw_delta(start, bearing(g.position(u), g.position(back)));
      h.direction = sweep_fwd <= sweep_back ? +1 : -1;
      Decision dec = boundary_step_decision(u, d, h);
      dec.hit_local_minimum = true;
      return dec;
    }
    h.mode = GfHeader::Mode::kFace;
    Decision dec = face_step(u, d, h);
    dec.hit_local_minimum = true;
    return dec;
  }

  if (h.mode == GfHeader::Mode::kBoundary) return boundary_step_decision(u, d, h);
  return face_step(u, d, h);
}

Router::Decision GfRouter::boundary_step_decision(NodeId u, NodeId d,
                                                  GfHeader& h) const {
  const UnitDiskGraph& g = graph();
  const auto& cycle =
      boundhole()->boundaries()[static_cast<size_t>(h.boundary)].cycle;
  int sz = static_cast<int>(cycle.size());
  // Abandon after a full loop without progress: fall back to face routing,
  // re-anchored at the current node (stale entry state corrupts both the
  // exit rule and the face-change geometry).
  if (h.boundary_steps >= static_cast<std::size_t>(sz)) {
    h.mode = GfHeader::Mode::kFace;
    h.prev = kInvalidNode;
    h.face_steps = 0;
    h.entry = g.position(u);
    h.entry_dist = distance(h.entry, g.position(d));
    h.best_cross = h.entry;
    return face_step(u, d, h);
  }
  ++h.boundary_steps;
  h.cycle_index = (h.cycle_index + h.direction + sz) % sz;
  NodeId next = cycle[static_cast<size_t>(h.cycle_index)];
  if (next == u) {  // duplicate slot in a degenerate cycle; advance once more
    h.cycle_index = (h.cycle_index + h.direction + sz) % sz;
    next = cycle[static_cast<size_t>(h.cycle_index)];
  }
  if (!g.are_neighbors(u, next) && next != u) {
    // Cycle bookkeeping no longer matches the walk (duplicate nodes); fall
    // back to face traversal rather than teleporting.
    h.mode = GfHeader::Mode::kFace;
    h.prev = kInvalidNode;
    h.face_steps = 0;
    h.entry = g.position(u);
    h.entry_dist = distance(h.entry, g.position(d));
    h.best_cross = h.entry;
    return face_step(u, d, h);
  }
  h.prev = u;
  return {next, HopPhase::kPerimeter, false};
}

Router::Decision GfRouter::face_step(NodeId u, NodeId d, GfHeader& h) const {
  const UnitDiskGraph& g = graph();
  Vec2 pu = g.position(u);
  Vec2 dest = g.position(d);

  auto nbrs = overlay().neighbors(u);
  if (nbrs.empty()) return {kInvalidNode, HopPhase::kPerimeter, false};

  // Livelock breaker: a correct face walk visits each overlay edge at most
  // twice; a walk that has gone on far longer is cycling on stale state.
  // Re-anchor the traversal at the current node.
  if (h.face_steps > 2 * g.size()) {
    h.prev = kInvalidNode;
    h.face_steps = 0;
    h.entry = pu;
    h.entry_dist = distance(pu, dest);
    h.best_cross = pu;
  }

  // Right-hand rule: first overlay neighbor counter-clockwise from the
  // incoming edge (or from the ray u->d on entry).
  double start = h.prev == kInvalidNode ? bearing(pu, dest)
                                        : bearing(pu, g.position(h.prev));
  auto rotate_next = [&](double from, NodeId exclude) -> NodeId {
    NodeId pick = kInvalidNode;
    double best = 0.0;
    for (NodeId v : nbrs) {
      if (v == exclude) continue;
      double sweep = ccw_delta(from, bearing(pu, g.position(v)));
      if (sweep == 0.0) sweep = kTwoPi;
      if (pick == kInvalidNode || sweep < best) {
        pick = v;
        best = sweep;
      }
    }
    return pick;
  };

  NodeId next = rotate_next(start, h.prev);
  if (next == kInvalidNode) next = h.prev;  // dead-end bounce
  if (next == kInvalidNode) return {kInvalidNode, HopPhase::kPerimeter, false};

  // Face change: never traverse an edge that crosses (entry, d) at a point
  // closer to d than the best crossing so far; rotate past it instead.
  Segment entry_to_dest{h.entry, dest};
  for (std::size_t guard = 0; guard < nbrs.size(); ++guard) {
    Segment edge{pu, g.position(next)};
    auto cross = segment_intersection(edge, entry_to_dest);
    if (!cross) break;
    if (distance(*cross, dest) >= distance(h.best_cross, dest) - 1e-12) break;
    h.best_cross = *cross;
    NodeId after = rotate_next(bearing(pu, g.position(next)), next);
    if (after == kInvalidNode || after == next) break;
    next = after;
  }

  h.prev = u;
  ++h.face_steps;
  return {next, HopPhase::kPerimeter, false};
}

}  // namespace spr
