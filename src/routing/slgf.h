#pragma once

/// \file slgf.h
/// SLGF: the safety-information LGF routing of the authors' earlier work
/// ([7], INFOCOM'08), reconstructed from this paper's Sections 2-3.
///
/// At node u with request zone type k toward d:
///   1. deliver when d is a neighbor;
///   2. *safe forwarding*: greedy among zone candidates v whose own zone
///      type k' toward d has S_{k'}(v) = 1 — by Theorem 1 such a path is
///      never blocked;
///   3. otherwise *enforced* greedy into the zone (unsafe candidates), which
///      may enter an unsafe area and hit a local minimum;
///   4. otherwise right-hand perimeter over untried nodes, as LGF.
///
/// SLGF2 (slgf2.h) replaces step 3's enforced entry with backup paths and
/// adds the shape-information rules.

#include "routing/router.h"
#include "safety/labeling.h"

namespace spr {

class SlgfRouter final : public Router {
 public:
  SlgfRouter(const UnitDiskGraph& g, const SafetyInfo& safety)
      : Router(g), safety_(safety) {}

  std::string_view name() const noexcept override { return "SLGF"; }

  /// Batched form: reuses one header (and its O(n) visited buffer) across
  /// the whole span instead of reallocating per packet.
  std::vector<PathResult> route_batch(
      std::span<const std::pair<NodeId, NodeId>> pairs,
      const RouteOptions& options = {}) const override;

 protected:
  Decision select_successor(NodeId u, NodeId d,
                            PacketHeader& header) const override;
  std::unique_ptr<PacketHeader> make_header(NodeId s, NodeId d) const override;
  bool reset_header(PacketHeader& header, NodeId s, NodeId d) const override;

 private:
  const SafetyInfo& safety_;
};

}  // namespace spr
