#include "routing/lgf.h"

#include <vector>

#include "routing/greedy_util.h"
#include "routing/hand_rule.h"

namespace spr {

namespace {
struct LgfHeader final : public PacketHeader {
  std::vector<bool> visited;
  bool in_perimeter = false;
  double stuck_dist = 0.0;  // |L(m) - L(d)| at the local minimum m
};
}  // namespace

std::unique_ptr<PacketHeader> LgfRouter::make_header(NodeId s, NodeId) const {
  auto header = std::make_unique<LgfHeader>();
  header->visited.assign(graph().size(), false);
  header->visited[s] = true;
  return header;
}

bool LgfRouter::reset_header(PacketHeader& header, NodeId s, NodeId) const {
  auto& h = static_cast<LgfHeader&>(header);
  h.visited.assign(graph().size(), false);
  h.visited[s] = true;
  h.in_perimeter = false;
  h.stuck_dist = 0.0;
  return true;
}

std::vector<PathResult> LgfRouter::route_batch(
    std::span<const std::pair<NodeId, NodeId>> pairs,
    const RouteOptions& options) const {
  return route_batch_reusing_headers(pairs, options);
}

Router::Decision LgfRouter::select_successor(NodeId u, NodeId d,
                                             PacketHeader& header) const {
  auto& h = static_cast<LgfHeader&>(header);
  h.visited[u] = true;
  const UnitDiskGraph& g = graph();

  // Step 1: deliver directly when possible.
  if (g.are_neighbors(u, d)) {
    h.in_perimeter = false;
    return {d, HopPhase::kGreedy, false};
  }

  Vec2 dest = g.position(d);
  // Perimeter exit rule of [2]: resume greedy once strictly closer to d
  // than the node where the packet got stuck.
  if (h.in_perimeter && distance(g.position(u), dest) < h.stuck_dist) {
    h.in_perimeter = false;
  }

  // Steps 2-3: greedy advance inside the request zone.
  if (!h.in_perimeter) {
    if (NodeId v = zone_greedy_successor(g, u, dest); v != kInvalidNode) {
      h.visited[v] = true;
      return {v, HopPhase::kGreedy, false};
    }
  }

  // Step 4: local minimum -> right-hand perimeter over untried nodes,
  // kept until the packet is closer to d than the stuck node.
  bool new_minimum = !h.in_perimeter;
  if (new_minimum) {
    h.in_perimeter = true;
    h.stuck_dist = distance(g.position(u), dest);
  }
  NodeId v = first_by_rotation_from(
      g, u, dest, Hand::kRight, [&](NodeId w) { return !h.visited[w]; });
  if (v == kInvalidNode) return {kInvalidNode, HopPhase::kPerimeter, new_minimum};
  h.visited[v] = true;
  return {v, HopPhase::kPerimeter, new_minimum};
}

}  // namespace spr
