#pragma once

/// \file baselines.h
/// Classic geographic forwarding baselines from the literature the paper
/// builds on, used by the extended benches to put GF/LGF/SLGF2 in context:
///
///  * MFR ("most forward within radius", Takagi & Kleinrock): forward to
///    the neighbor whose projection onto the line u->d is farthest forward.
///  * Compass routing (Kranakis, Singh & Urrutia): forward to the neighbor
///    whose direction is angularly closest to the ray u->d.
///  * Flooding: BFS-style expanding broadcast — guaranteed delivery on
///    connected pairs, used as the delivery oracle (its hop count equals
///    the BFS optimum; its cost is every node transmitting once).
///
/// MFR and Compass are greedy-only (no recovery): they fail at the first
/// local minimum, which is exactly what makes them useful ablation anchors
/// for the recovery machinery.

#include "routing/router.h"

namespace spr {

/// Most-forward-within-radius. Progress is measured by scalar projection on
/// the u->d direction; only strictly positive progress is accepted.
class MfrRouter final : public Router {
 public:
  explicit MfrRouter(const UnitDiskGraph& g) : Router(g) {}
  std::string_view name() const noexcept override { return "MFR"; }

 protected:
  Decision select_successor(NodeId u, NodeId d,
                            PacketHeader& header) const override;
  std::unique_ptr<PacketHeader> make_header(NodeId s, NodeId d) const override;
};

/// Compass routing: minimal angular deviation from the ray u->d. The
/// classic variant can loop on some graphs, so the walk carries a visited
/// set and fails (dead end) instead of cycling.
class CompassRouter final : public Router {
 public:
  explicit CompassRouter(const UnitDiskGraph& g) : Router(g) {}
  std::string_view name() const noexcept override { return "Compass"; }

 protected:
  Decision select_successor(NodeId u, NodeId d,
                            PacketHeader& header) const override;
  std::unique_ptr<PacketHeader> make_header(NodeId s, NodeId d) const override;
};

/// Flooding "router": conceptually every node rebroadcasts once. route()
/// reports the BFS-optimal path as the delivered path and accounts the
/// broadcast cost (n transmissions) separately.
class FloodingRouter final : public Router {
 public:
  explicit FloodingRouter(const UnitDiskGraph& g) : Router(g) {}
  std::string_view name() const noexcept override { return "Flooding"; }

  PathResult route(NodeId s, NodeId d,
                   const RouteOptions& options = {}) const override;

  /// Transmissions a real flood would cost (every reachable node once).
  std::size_t broadcast_cost(NodeId s) const;

 protected:
  Decision select_successor(NodeId, NodeId, PacketHeader&) const override;
  std::unique_ptr<PacketHeader> make_header(NodeId, NodeId) const override;
};

}  // namespace spr
