#pragma once

/// \file gf.h
/// GF: classic geographic greedy forwarding with perimeter recovery.
///
/// Greedy phase: forward to the neighbor strictly closest to d (progress
/// required). At a local minimum the router recovers by:
///
///  * kFace — GPSR-style right-hand face traversal of the Gabriel overlay
///    with the standard closer-than-entry exit rule and face changes on
///    crossings of the entry->destination segment; or
///  * kBoundHole — the paper's evaluation setup: if the stuck node lies on
///    a precomputed BOUNDHOLE boundary, walk that boundary (direction by
///    right hand w.r.t. the ray u->d) until a node closer to d than the
///    entry point, falling back to face traversal otherwise.
///
/// The recovery structures can be supplied lazily: with the provider
/// constructor the overlay/BOUNDHOLE are materialized only when the first
/// packet actually hits a local minimum, so hole-free greedy traffic never
/// pays for them (Network::make_router wires the network's memoized lazy
/// accessors in here).

#include <atomic>
#include <functional>

#include "graph/planar.h"
#include "routing/boundhole.h"
#include "routing/router.h"

namespace spr {

class GfRouter final : public Router {
 public:
  enum class Recovery { kFace, kBoundHole };

  /// Lazy sources for the recovery structures. The overlay provider must
  /// return a reference that outlives the router; the BOUNDHOLE provider may
  /// return null (face traversal is used instead).
  using OverlayProvider = std::function<const PlanarOverlay&()>;
  using BoundHoleProvider = std::function<const BoundHoleInfo*()>;

  /// Eager form: `overlay` must outlive the router. `boundhole` may be null
  /// for kFace.
  GfRouter(const UnitDiskGraph& g, const PlanarOverlay& overlay,
           const BoundHoleInfo* boundhole, Recovery recovery);

  /// Lazy form: providers are invoked on the first local minimum (at most
  /// once per thread; concurrent first hits may each invoke them, so
  /// providers must be thread-safe and memoized — Network's call_once
  /// accessors are). The resolved pointers are cached atomically, making
  /// concurrent route()/step() calls on one router instance safe.
  GfRouter(const UnitDiskGraph& g, OverlayProvider overlay,
           BoundHoleProvider boundhole, Recovery recovery);

  std::string_view name() const noexcept override {
    return recovery_ == Recovery::kFace ? "GF/face" : "GF";
  }

  /// Batched form: one header reused across packets. The lazy recovery
  /// providers still materialize at most once for the whole batch — on the
  /// first packet that actually hits a local minimum — so an all-greedy
  /// batch builds neither the overlay nor the BOUNDHOLE boundaries.
  std::vector<PathResult> route_batch(
      std::span<const std::pair<NodeId, NodeId>> pairs,
      const RouteOptions& options = {}) const override;

 protected:
  Decision select_successor(NodeId u, NodeId d,
                            PacketHeader& header) const override;
  std::unique_ptr<PacketHeader> make_header(NodeId s, NodeId d) const override;
  bool reset_header(PacketHeader& header, NodeId s, NodeId d) const override;

 private:
  struct GfHeader;

  const PlanarOverlay& overlay() const;
  const BoundHoleInfo* boundhole() const;

  Decision face_step(NodeId u, NodeId d, GfHeader& h) const;
  Decision boundary_step_decision(NodeId u, NodeId d, GfHeader& h) const;

  OverlayProvider overlay_provider_;
  BoundHoleProvider boundhole_provider_;
  // Atomic lazy caches so concurrent steppers sharing this router (the
  // flight-record engine's parallel tick advance) can race into the first
  // local minimum safely: the providers are memoized behind call_once
  // (Network's lazy accessors), so concurrent resolvers store the same
  // pointer and hole-free traffic still never builds either structure.
  mutable std::atomic<const PlanarOverlay*> overlay_{nullptr};
  mutable std::atomic<const BoundHoleInfo*> boundhole_{nullptr};
  mutable std::atomic<bool> boundhole_resolved_{false};
  Recovery recovery_;
};

}  // namespace spr
