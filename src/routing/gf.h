#pragma once

/// \file gf.h
/// GF: classic geographic greedy forwarding with perimeter recovery.
///
/// Greedy phase: forward to the neighbor strictly closest to d (progress
/// required). At a local minimum the router recovers by:
///
///  * kFace — GPSR-style right-hand face traversal of the Gabriel overlay
///    with the standard closer-than-entry exit rule and face changes on
///    crossings of the entry->destination segment; or
///  * kBoundHole — the paper's evaluation setup: if the stuck node lies on
///    a precomputed BOUNDHOLE boundary, walk that boundary (direction by
///    right hand w.r.t. the ray u->d) until a node closer to d than the
///    entry point, falling back to face traversal otherwise.

#include "graph/planar.h"
#include "routing/boundhole.h"
#include "routing/router.h"

namespace spr {

class GfRouter final : public Router {
 public:
  enum class Recovery { kFace, kBoundHole };

  /// `overlay` must outlive the router. `boundhole` may be null for kFace.
  GfRouter(const UnitDiskGraph& g, const PlanarOverlay& overlay,
           const BoundHoleInfo* boundhole, Recovery recovery);

  std::string_view name() const noexcept override {
    return recovery_ == Recovery::kFace ? "GF/face" : "GF";
  }

 protected:
  Decision select_successor(NodeId u, NodeId d,
                            PacketHeader& header) const override;
  std::unique_ptr<PacketHeader> make_header(NodeId s, NodeId d) const override;

 private:
  struct GfHeader;

  Decision face_step(NodeId u, NodeId d, GfHeader& h) const;
  Decision boundary_step_decision(NodeId u, NodeId d, GfHeader& h) const;

  const PlanarOverlay& overlay_;
  const BoundHoleInfo* boundhole_;
  Recovery recovery_;
};

}  // namespace spr
