#pragma once

/// \file slgf2.h
/// SLGF2 (paper Algorithm 3): the safety-information routing with estimated
/// shape information. Phases, in order, at every intermediate node:
///
///   1. deliver when d is a neighbor;
///   2. *safe forwarding* — greedy among request-zone candidates v that are
///      safe toward d (S_{k'}(v) = 1 for v's own zone type k');
///   3. *either-hand superseding rule* — candidates falling in the
///      forbidden region of a visible unsafe-area estimate E_i(v) (the side
///      of the diagonal v -> (x_{v(1)}, y_{v(2)}) away from d) are avoided
///      whenever an alternative exists;
///   4. *backup-path forwarding* — when the zone holds no safe candidate,
///      forward to any neighbor that is safe in *some* type, selected by
///      the committed hand rule, until safe forwarding resumes (this
///      replaces SLGF's enforced entry into the unsafe area);
///   5. *perimeter routing* — either-hand, hand kept for the rest of the
///      walk, candidates confined to the rectangle covering the advertised
///      E areas (inflated by one radio range).
///
/// The hand is chosen once per detour from the destination's side of the
/// blocking estimate's diagonal and kept, which prevents oscillation.
///
/// `Slgf2Options` exposes each mechanism for the ablation bench.

#include "routing/router.h"
#include "safety/labeling.h"
#include "safety/shape.h"

namespace spr {

/// Feature toggles (all on = the paper's SLGF2).
struct Slgf2Options {
  bool use_either_hand = true;   ///< step 3 superseding rule
  bool use_backup_paths = true;  ///< step 4 (off = SLGF-style enforced entry)
  bool limit_perimeter = true;   ///< step 5 rectangle confinement
};

class Slgf2Router final : public Router {
 public:
  Slgf2Router(const UnitDiskGraph& g, const SafetyInfo& safety,
              Slgf2Options options = {})
      : Router(g), safety_(safety), options_(options) {}

  std::string_view name() const noexcept override { return "SLGF2"; }

  const Slgf2Options& options() const noexcept { return options_; }

  /// Batched form: reuses one header (and its O(n) visited buffer) across
  /// the whole span instead of reallocating per packet.
  std::vector<PathResult> route_batch(
      std::span<const std::pair<NodeId, NodeId>> pairs,
      const RouteOptions& options = {}) const override;

 protected:
  Decision select_successor(NodeId u, NodeId d,
                            PacketHeader& header) const override;
  std::unique_ptr<PacketHeader> make_header(NodeId s, NodeId d) const override;
  bool reset_header(PacketHeader& header, NodeId s, NodeId d) const override;

 private:
  struct Header;

  const SafetyInfo& safety_;
  Slgf2Options options_;
};

}  // namespace spr
