#pragma once

/// \file greedy_util.h
/// Shared successor-selection primitives: greedy advances (plain GF and the
/// request-zone-limited variant) with optional candidate filters.

#include <functional>

#include "geometry/quadrant.h"
#include "graph/unit_disk.h"

namespace spr {

/// Candidate filter: return false to exclude a node.
using NodeFilter = std::function<bool(NodeId)>;

/// Plain greedy forwarding: the neighbor of u strictly closer to `dest`
/// than u and closest to `dest` overall. kInvalidNode at a local minimum.
NodeId greedy_successor(const UnitDiskGraph& g, NodeId u, Vec2 dest);

/// Request-zone-limited greedy (LGF step 3): the neighbor inside
/// Z(u, dest) closest to `dest`, optionally restricted by `keep`.
/// kInvalidNode when the zone holds no (eligible) neighbor.
NodeId zone_greedy_successor(const UnitDiskGraph& g, NodeId u, Vec2 dest,
                             const NodeFilter& keep = {});

/// Generic: closest-to-dest neighbor among those passing `keep`.
NodeId closest_successor(const UnitDiskGraph& g, NodeId u, Vec2 dest,
                         const NodeFilter& keep);

}  // namespace spr
