#include "routing/lar.h"

#include <vector>

#include "routing/greedy_util.h"
#include "routing/hand_rule.h"

namespace spr {

namespace {
struct LarHeader final : public PacketHeader {
  std::vector<bool> visited;
  bool in_perimeter = false;
  double stuck_dist = 0.0;
};
}  // namespace

std::unique_ptr<PacketHeader> LarRouter::make_header(NodeId s, NodeId) const {
  auto header = std::make_unique<LarHeader>();
  header->visited.assign(graph().size(), false);
  header->visited[s] = true;
  return header;
}

Router::Decision LarRouter::select_successor(NodeId u, NodeId d,
                                             PacketHeader& header) const {
  auto& h = static_cast<LarHeader&>(header);
  h.visited[u] = true;
  const UnitDiskGraph& g = graph();

  if (g.are_neighbors(u, d)) {
    h.in_perimeter = false;
    return {d, HopPhase::kGreedy, false};
  }

  // Greedy target: the center of the expected zone (the best aim available
  // when the destination's exact position is unknown).
  Vec2 aim = estimate_.last_known;
  if (h.in_perimeter && distance(g.position(u), aim) < h.stuck_dist) {
    h.in_perimeter = false;
  }

  if (!h.in_perimeter) {
    Rect zone = estimate_.request_zone_from(g.position(u));
    NodeId pick = kInvalidNode;
    double best = -1.0;
    for (NodeId v : g.neighbors(u)) {
      Vec2 pv = g.position(v);
      if (!zone.contains(pv)) continue;
      double dist = distance_sq(pv, aim);
      if (pick == kInvalidNode || dist < best) {
        best = dist;
        pick = v;
      }
    }
    // Require progress toward the aim: the request zone contains u itself,
    // so without this check the "closest" candidate can be a stall.
    if (pick != kInvalidNode &&
        distance_sq(g.position(pick), aim) <
            distance_sq(g.position(u), aim)) {
      h.visited[pick] = true;
      return {pick, HopPhase::kGreedy, false};
    }
  }

  bool new_minimum = !h.in_perimeter;
  if (new_minimum) {
    h.in_perimeter = true;
    h.stuck_dist = distance(g.position(u), aim);
  }
  NodeId v = first_by_rotation_from(
      g, u, aim, Hand::kRight, [&](NodeId w) { return !h.visited[w]; });
  if (v == kInvalidNode) return {kInvalidNode, HopPhase::kPerimeter, new_minimum};
  h.visited[v] = true;
  return {v, HopPhase::kPerimeter, new_minimum};
}

}  // namespace spr
