#pragma once

/// \file boundhole.h
/// BOUNDHOLE (Fang, Gao, Guibas, INFOCOM'04 — reference [5] of the paper):
/// stuck-node detection by the TENT rule and hole-boundary construction by
/// a sweeping boundary walk. The paper's Section 5 precomputes this
/// "boundary information" for the GF baseline, which then recovers from a
/// local minimum by walking the hole boundary instead of blind perimeter
/// probing.
///
/// Implementation notes (documented substitution, see DESIGN.md): we keep
/// the TENT rule exact (perpendicular-bisector intersection inside the
/// radio disc) and build each boundary with the right-hand sweep on the
/// full unit-disk graph, omitting the original's crossing-edge "untie"
/// refinement; boundaries that fail to close within a step cap are
/// discarded (their stuck nodes then fall back to face routing).

#include <vector>

#include "graph/unit_disk.h"

namespace spr {

/// One detected hole boundary (closed cycle, first node repeated nowhere).
struct HoleBoundary {
  std::vector<NodeId> cycle;
};

/// TENT rule at one node: true when some angularly-adjacent neighbor pair
/// leaves a direction in which u can be a local minimum (gap >= pi, or the
/// bisector intersection falls outside the radio disc). Nodes with fewer
/// than two neighbors are trivially stuck candidates.
bool tent_rule_stuck(const UnitDiskGraph& g, NodeId u);

/// Precomputed boundary information for a network.
class BoundHoleInfo {
 public:
  /// Detects stuck nodes and builds boundaries. `max_cycle_factor` caps a
  /// boundary walk at max_cycle_factor * n steps before discarding it.
  explicit BoundHoleInfo(const UnitDiskGraph& g, std::size_t max_cycle_factor = 2);

  bool is_stuck(NodeId u) const noexcept { return stuck_[u]; }
  std::size_t stuck_count() const noexcept;

  /// Boundary index containing u, or -1.
  int boundary_of(NodeId u) const noexcept { return boundary_of_[u]; }

  const std::vector<HoleBoundary>& boundaries() const noexcept { return boundaries_; }

  /// Position of `u` within its boundary cycle; -1 when not on one.
  int cycle_position(NodeId u) const noexcept { return cycle_pos_[u]; }

 private:
  std::vector<bool> stuck_;
  std::vector<int> boundary_of_;
  std::vector<int> cycle_pos_;
  std::vector<HoleBoundary> boundaries_;
};

}  // namespace spr
