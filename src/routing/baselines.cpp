#include "routing/baselines.h"

#include <limits>
#include <vector>

#include "geometry/angle.h"
#include "graph/graph_algos.h"

namespace spr {

namespace {
struct EmptyHeader final : public PacketHeader {};

struct VisitedHeader final : public PacketHeader {
  std::vector<bool> visited;
};
}  // namespace

// ---------------------------------------------------------------- MFR ----

std::unique_ptr<PacketHeader> MfrRouter::make_header(NodeId, NodeId) const {
  return std::make_unique<EmptyHeader>();
}

Router::Decision MfrRouter::select_successor(NodeId u, NodeId d,
                                             PacketHeader&) const {
  const UnitDiskGraph& g = graph();
  if (g.are_neighbors(u, d)) return {d, HopPhase::kGreedy, false};
  Vec2 pu = g.position(u);
  Vec2 toward = (g.position(d) - pu).normalized();
  NodeId pick = kInvalidNode;
  double best_progress = 0.0;  // strictly positive progress required
  for (NodeId v : g.neighbors(u)) {
    double progress = (g.position(v) - pu).dot(toward);
    if (progress > best_progress) {
      best_progress = progress;
      pick = v;
    }
  }
  if (pick == kInvalidNode) return {kInvalidNode, HopPhase::kGreedy, true};
  return {pick, HopPhase::kGreedy, false};
}

// ------------------------------------------------------------ Compass ----

std::unique_ptr<PacketHeader> CompassRouter::make_header(NodeId s, NodeId) const {
  auto header = std::make_unique<VisitedHeader>();
  header->visited.assign(graph().size(), false);
  header->visited[s] = true;
  return header;
}

Router::Decision CompassRouter::select_successor(NodeId u, NodeId d,
                                                 PacketHeader& header) const {
  auto& h = static_cast<VisitedHeader&>(header);
  const UnitDiskGraph& g = graph();
  h.visited[u] = true;
  if (g.are_neighbors(u, d)) return {d, HopPhase::kGreedy, false};
  Vec2 pu = g.position(u);
  double ray = bearing(pu, g.position(d));
  NodeId pick = kInvalidNode;
  double best_dev = std::numeric_limits<double>::infinity();
  for (NodeId v : g.neighbors(u)) {
    if (h.visited[v]) continue;  // loop-erasure: classic compass can cycle
    double dev = ccw_delta(ray, bearing(pu, g.position(v)));
    dev = std::min(dev, kTwoPi - dev);
    if (dev < best_dev) {
      best_dev = dev;
      pick = v;
    }
  }
  // Compass has no recovery: a deviation beyond 90 degrees means no
  // forward-ish neighbor exists — treat as a local minimum and stop.
  if (pick == kInvalidNode || best_dev > kPi / 2.0) {
    return {kInvalidNode, HopPhase::kGreedy, true};
  }
  h.visited[pick] = true;
  return {pick, HopPhase::kGreedy, false};
}

// ----------------------------------------------------------- Flooding ----

std::unique_ptr<PacketHeader> FloodingRouter::make_header(NodeId, NodeId) const {
  return std::make_unique<EmptyHeader>();
}

Router::Decision FloodingRouter::select_successor(NodeId, NodeId,
                                                  PacketHeader&) const {
  // Never called: route() is overridden.
  return {kInvalidNode, HopPhase::kGreedy, false};
}

PathResult FloodingRouter::route(NodeId s, NodeId d,
                                 const RouteOptions&) const {
  PathResult result;
  auto sp = bfs_path(graph(), s, d);
  if (sp.path.empty() && s != d) {
    result.status = RouteStatus::kDeadEnd;
    result.path = {s};
    return result;
  }
  result.status = RouteStatus::kDelivered;
  result.path = sp.path.empty() ? std::vector<NodeId>{s} : sp.path;
  result.length = sp.length;
  result.hop_phases.assign(result.path.size() - 1, HopPhase::kGreedy);
  return result;
}

std::size_t FloodingRouter::broadcast_cost(NodeId s) const {
  auto dist = bfs_hops(graph(), s);
  std::size_t reached = 0;
  for (std::size_t v = 0; v < dist.size(); ++v) {
    if (dist[v] != std::numeric_limits<std::size_t>::max()) ++reached;
  }
  return reached;
}

}  // namespace spr
