#pragma once

/// \file router.h
/// The router interface and the shared hop-by-hop walk driver. Every scheme
/// in the paper is expressed as a *successor selection* at the current node
/// using only local knowledge (N(u), positions of u/d, and whatever state
/// the packet header carries); the driver owns TTL, path recording and
/// phase accounting.
///
/// Batching: `route_batch` routes a span of (s, d) pairs and is always
/// equivalent to looping `route`. The default implementation is exactly
/// that loop; schemes override it (via `route_batch_reusing_headers`) to
/// hoist per-packet setup — the header heap allocation, the O(n) visited
/// buffers, path capacity — out of the inner loop, which is the hot path
/// of every sweep cell.

#include <memory>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "graph/unit_disk.h"
#include "routing/packet.h"

namespace spr {

/// Mutable per-packet header state threaded through successor selections.
/// Routers downcast to their own header type.
class PacketHeader {
 public:
  virtual ~PacketHeader() = default;
};

/// A geographic routing scheme.
class Router {
 public:
  virtual ~Router() = default;

  virtual std::string_view name() const noexcept = 0;

  /// Routes one packet from s to d. The default implementation drives
  /// `make_header` / `select_successor` under the TTL in `options`.
  /// Out-of-range endpoints (e.g. a kInvalidNode pair from a failed
  /// connected-pair draw) yield an empty kDeadEnd result, never UB.
  virtual PathResult route(NodeId s, NodeId d,
                           const RouteOptions& options = {}) const;

  /// Routes pairs[i] for every i, returning one PathResult per pair in
  /// order. Semantically identical to calling `route` in a loop (tests
  /// enforce this per scheme); overrides only hoist per-packet setup.
  virtual std::vector<PathResult> route_batch(
      std::span<const std::pair<NodeId, NodeId>> pairs,
      const RouteOptions& options = {}) const;

 protected:
  explicit Router(const UnitDiskGraph& g) : g_(g) {}

  /// One successor decision at `u`. Returns the next hop (a neighbor of u
  /// or d itself when d is a neighbor) or kInvalidNode when stuck. Sets
  /// `phase` to classify the hop and may flag a local minimum.
  struct Decision {
    NodeId next = kInvalidNode;
    HopPhase phase = HopPhase::kGreedy;
    bool hit_local_minimum = false;
  };
  virtual Decision select_successor(NodeId u, NodeId d,
                                    PacketHeader& header) const = 0;

  /// Fresh per-packet header.
  virtual std::unique_ptr<PacketHeader> make_header(NodeId s, NodeId d) const = 0;

  /// Re-initializes `header` (previously produced by this router's
  /// `make_header`) for a new (s, d) packet, reusing its buffers. Returns
  /// false when the router has no in-place reset (the batch loop then
  /// falls back to a fresh header). The default supports no reset.
  virtual bool reset_header(PacketHeader& header, NodeId s, NodeId d) const;

  /// The hop loop behind `route`, driving an externally owned and already
  /// initialized header. `reserve_hint` pre-sizes the path/phase buffers
  /// (pass the previous packet's hop count in batch loops; 0 = no reserve).
  PathResult drive(NodeId s, NodeId d, const RouteOptions& options,
                   PacketHeader& header, std::size_t reserve_hint = 0) const;

  /// Shared `route_batch` override body: one header allocated up front,
  /// `reset_header` per packet, path capacity carried between packets.
  std::vector<PathResult> route_batch_reusing_headers(
      std::span<const std::pair<NodeId, NodeId>> pairs,
      const RouteOptions& options) const;

  const UnitDiskGraph& graph() const noexcept { return g_; }

 private:
  const UnitDiskGraph& g_;
};

}  // namespace spr
