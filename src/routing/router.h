#pragma once

/// \file router.h
/// The router interface and the shared hop-by-hop walk driver. Every scheme
/// in the paper is expressed as a *successor selection* at the current node
/// using only local knowledge (N(u), positions of u/d, and whatever state
/// the packet header carries); the driver owns TTL, path recording and
/// phase accounting.

#include <memory>
#include <string_view>

#include "graph/unit_disk.h"
#include "routing/packet.h"

namespace spr {

/// Mutable per-packet header state threaded through successor selections.
/// Routers downcast to their own header type.
class PacketHeader {
 public:
  virtual ~PacketHeader() = default;
};

/// A geographic routing scheme.
class Router {
 public:
  virtual ~Router() = default;

  virtual std::string_view name() const noexcept = 0;

  /// Routes one packet from s to d. The default implementation drives
  /// `make_header` / `select_successor` under the TTL in `options`.
  virtual PathResult route(NodeId s, NodeId d,
                           const RouteOptions& options = {}) const;

 protected:
  explicit Router(const UnitDiskGraph& g) : g_(g) {}

  /// One successor decision at `u`. Returns the next hop (a neighbor of u
  /// or d itself when d is a neighbor) or kInvalidNode when stuck. Sets
  /// `phase` to classify the hop and may flag a local minimum.
  struct Decision {
    NodeId next = kInvalidNode;
    HopPhase phase = HopPhase::kGreedy;
    bool hit_local_minimum = false;
  };
  virtual Decision select_successor(NodeId u, NodeId d,
                                    PacketHeader& header) const = 0;

  /// Fresh per-packet header.
  virtual std::unique_ptr<PacketHeader> make_header(NodeId s, NodeId d) const = 0;

  const UnitDiskGraph& graph() const noexcept { return g_; }

 private:
  const UnitDiskGraph& g_;
};

}  // namespace spr
