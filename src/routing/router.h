#pragma once

/// \file router.h
/// The router interface and the shared hop-by-hop walk machinery. Every
/// scheme in the paper is expressed as a *successor selection* at the
/// current node using only local knowledge (N(u), positions of u/d, and
/// whatever state the packet header carries); the walk itself — TTL, path
/// recording, phase accounting — lives in RouteStepper, a public state
/// machine that advances one hop per `step()` call.
///
/// `route` is a thin driver that steps a stepper to completion;
/// discrete-event simulators (sim/stream_sim.h) instead keep steppers for
/// many in-flight packets and interleave their hops on one timeline,
/// observing topology changes between hops. Both produce bit-identical
/// results for an unchanged topology (tests enforce this per scheme).
///
/// Batching: `route_batch` routes a span of (s, d) pairs and is always
/// equivalent to looping `route`. The default implementation is exactly
/// that loop; schemes override it (via `route_batch_reusing_headers`) to
/// hoist per-packet setup — the header heap allocation, the O(n) visited
/// buffers, path capacity — out of the inner loop, which is the hot path
/// of every sweep cell.

#include <memory>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "graph/unit_disk.h"
#include "routing/packet.h"

namespace spr {

class RouteStepper;

/// Mutable per-packet header state threaded through successor selections.
/// Routers downcast to their own header type.
class PacketHeader {
 public:
  virtual ~PacketHeader() = default;
};

/// A geographic routing scheme.
class Router {
 public:
  virtual ~Router() = default;

  virtual std::string_view name() const noexcept = 0;

  /// Routes one packet from s to d: steps a RouteStepper to completion
  /// under the TTL in `options`. Out-of-range endpoints (e.g. a
  /// kInvalidNode pair from a failed connected-pair draw) yield an empty
  /// kDeadEnd result, never UB.
  virtual PathResult route(NodeId s, NodeId d,
                           const RouteOptions& options = {}) const;

  /// Routes pairs[i] for every i, returning one PathResult per pair in
  /// order. Semantically identical to calling `route` in a loop (tests
  /// enforce this per scheme); overrides only hoist per-packet setup.
  virtual std::vector<PathResult> route_batch(
      std::span<const std::pair<NodeId, NodeId>> pairs,
      const RouteOptions& options = {}) const;

  /// An in-flight packet from s toward d, advanced one hop per
  /// RouteStepper::step() call. The stepper owns its header; the router
  /// (and the structures it references) must outlive it. `ttl_limit`
  /// overrides the options-derived hop budget when nonzero — simulators
  /// re-planning a packet mid-flight pass its remaining budget so the
  /// re-plan never extends the packet's life.
  ///
  /// Stepping the returned stepper to exhaustion yields exactly
  /// `route(s, d, options)` (for equal TTL): same path, same phases, same
  /// floating-point length.
  std::unique_ptr<RouteStepper> make_stepper(NodeId s, NodeId d,
                                             const RouteOptions& options = {},
                                             std::size_t ttl_limit = 0) const;

  /// Re-arms a pooled `stepper` slot in place for a new (s, d) packet —
  /// the zero-allocation sibling of `make_stepper`. The slot's header is
  /// reused through `reset_header` when possible (falling back to a fresh
  /// `make_header` on the first use of a slot or for routers without an
  /// in-place reset) and the path/phase buffers keep their capacity.
  /// Stepping the re-armed slot is bit-identical to stepping a fresh
  /// `make_stepper(s, d, options, ttl_limit)` (tests enforce this).
  void restart_stepper(RouteStepper& stepper, NodeId s, NodeId d,
                       const RouteOptions& options = {},
                       std::size_t ttl_limit = 0) const;

 protected:
  explicit Router(const UnitDiskGraph& g) : g_(g) {}

  /// One successor decision at `u`. Returns the next hop (a neighbor of u
  /// or d itself when d is a neighbor) or kInvalidNode when stuck. Sets
  /// `phase` to classify the hop and may flag a local minimum.
  struct Decision {
    NodeId next = kInvalidNode;
    HopPhase phase = HopPhase::kGreedy;
    bool hit_local_minimum = false;
  };
  virtual Decision select_successor(NodeId u, NodeId d,
                                    PacketHeader& header) const = 0;

  /// Fresh per-packet header.
  virtual std::unique_ptr<PacketHeader> make_header(NodeId s, NodeId d) const = 0;

  /// Re-initializes `header` (previously produced by this router's
  /// `make_header`) for a new (s, d) packet, reusing its buffers. Returns
  /// false when the router has no in-place reset (the batch loop then
  /// falls back to a fresh header). The default supports no reset.
  virtual bool reset_header(PacketHeader& header, NodeId s, NodeId d) const;

  /// The hop loop behind `route`: steps a stepper over an externally owned
  /// and already initialized header to completion. `reserve_hint`
  /// pre-sizes the path/phase buffers (pass the previous packet's hop
  /// count in batch loops; 0 = no reserve).
  PathResult drive(NodeId s, NodeId d, const RouteOptions& options,
                   PacketHeader& header, std::size_t reserve_hint = 0) const;

  /// Shared `route_batch` override body: one header allocated up front,
  /// `reset_header` per packet, path capacity carried between packets.
  std::vector<PathResult> route_batch_reusing_headers(
      std::span<const std::pair<NodeId, NodeId>> pairs,
      const RouteOptions& options) const;

  const UnitDiskGraph& graph() const noexcept { return g_; }

 private:
  friend class RouteStepper;
  const UnitDiskGraph& g_;
};

/// The hop-by-hop walk of one packet, factored out of the old atomic
/// `Router::route` TTL loop. Holds the scheme header and the partial
/// PathResult; each `step()` makes exactly one successor decision and
/// appends the hop (or finishes the packet). Obtain one via
/// `Router::make_stepper`; `Router::route` itself is `while (step());`.
///
/// The stepper borrows the router — it must not outlive it (nor the graph
/// and safety/overlay structures the router references). It never observes
/// the topology except through the router, so a simulator that swaps the
/// substrate between hops re-plans by building a fresh stepper at the
/// packet's current node with its remaining TTL.
class RouteStepper {
 public:
  /// An empty slot: not in flight, no header, no router. Simulators keep
  /// vectors of these and arm them with `Router::restart_stepper`.
  RouteStepper() = default;

  RouteStepper(RouteStepper&&) = default;
  RouteStepper& operator=(RouteStepper&&) = default;

  /// One hop: a successor decision, path/phase/length accounting, and the
  /// delivered / dead-end / TTL-expired transitions. No-op once finished.
  /// Returns true while the packet is still in flight after the step.
  bool step();

  /// True until the packet delivers or fails.
  bool in_flight() const noexcept { return in_flight_; }

  /// The node currently holding the packet.
  NodeId current() const noexcept { return u_; }
  NodeId destination() const noexcept { return d_; }

  /// Hops the packet may still take before kTtlExpired.
  std::size_t ttl_remaining() const noexcept { return ttl_remaining_; }

  /// The walk so far. While in flight, `status` is not meaningful (the
  /// packet has not finished); path/phases/length are the partial walk.
  const PathResult& result() const noexcept { return result_; }

  /// Moves the (final) result out; the stepper is spent afterwards.
  PathResult take_result() noexcept { return std::move(result_); }

  /// Hops executed since this slot was (re)armed. Equals result().hops()
  /// while path recording is on; it is the only hop count available when
  /// recording is off.
  std::size_t hops_taken() const noexcept { return hops_taken_; }

  /// Toggles path/phase recording. With recording off, `step()` keeps the
  /// status, length, local-minima and `hops_taken()` accounting bit-exact
  /// but appends nothing to the result's path/phase vectors — flight
  /// simulators that only reduce per-flight aggregates skip the per-walk
  /// buffer growth (and its memory footprint) entirely. Arming a slot
  /// (`make_stepper` / `restart_stepper`) resets recording to on.
  void set_record_path(bool record) noexcept { record_path_ = record; }

  /// Frees the header and the walk buffers, returning the slot to its
  /// default-constructed footprint. Pooled simulators call this when a
  /// flight terminates so steady-state memory matches the legacy
  /// one-stepper-per-flight profile.
  void release() noexcept {
    owned_header_.reset();
    header_ = nullptr;
    result_ = PathResult{};
    in_flight_ = false;
    u_ = kInvalidNode;
    hops_taken_ = 0;
    record_path_ = true;
  }

 private:
  friend class Router;

  /// `owned` may be null when `header` points at an externally owned
  /// header (the batch driver) or when the packet finished on
  /// construction (s == d, invalid endpoints, zero TTL).
  RouteStepper(const Router& router, NodeId s, NodeId d,
               std::unique_ptr<PacketHeader> owned, PacketHeader* header,
               std::size_t ttl, std::size_t reserve_hint);

  void finish(RouteStatus status) noexcept {
    result_.status = status;
    in_flight_ = false;
  }

  const Router* router_ = nullptr;
  std::unique_ptr<PacketHeader> owned_header_;
  PacketHeader* header_ = nullptr;
  NodeId u_ = kInvalidNode;
  NodeId d_ = kInvalidNode;
  std::size_t ttl_remaining_ = 0;
  std::size_t hops_taken_ = 0;
  bool in_flight_ = false;
  bool record_path_ = true;
  PathResult result_;
};

}  // namespace spr
