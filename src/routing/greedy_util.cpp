#include "routing/greedy_util.h"

namespace spr {

NodeId greedy_successor(const UnitDiskGraph& g, NodeId u, Vec2 dest) {
  Vec2 pu = g.position(u);
  double best = distance_sq(pu, dest);  // must beat u itself
  NodeId pick = kInvalidNode;
  for (NodeId v : g.neighbors(u)) {
    double d = distance_sq(g.position(v), dest);
    if (d < best) {
      best = d;
      pick = v;
    }
  }
  return pick;
}

NodeId zone_greedy_successor(const UnitDiskGraph& g, NodeId u, Vec2 dest,
                             const NodeFilter& keep) {
  Vec2 pu = g.position(u);
  Rect zone = request_zone(pu, dest);
  double best = -1.0;
  NodeId pick = kInvalidNode;
  for (NodeId v : g.neighbors(u)) {
    Vec2 pv = g.position(v);
    if (!zone.contains(pv)) continue;
    if (keep && !keep(v)) continue;
    double d = distance_sq(pv, dest);
    if (pick == kInvalidNode || d < best) {
      best = d;
      pick = v;
    }
  }
  return pick;
}

NodeId closest_successor(const UnitDiskGraph& g, NodeId u, Vec2 dest,
                         const NodeFilter& keep) {
  double best = -1.0;
  NodeId pick = kInvalidNode;
  for (NodeId v : g.neighbors(u)) {
    if (keep && !keep(v)) continue;
    double d = distance_sq(g.position(v), dest);
    if (pick == kInvalidNode || d < best) {
      best = d;
      pick = v;
    }
  }
  return pick;
}

}  // namespace spr
