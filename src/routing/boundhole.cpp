#include "routing/boundhole.h"

#include <algorithm>
#include <vector>

#include "geometry/angle.h"
#include "geometry/segment.h"

namespace spr {

bool tent_rule_stuck(const UnitDiskGraph& g, NodeId u) {
  auto nbrs = g.neighbors(u);
  if (nbrs.size() < 2) return true;
  Vec2 pu = g.position(u);

  // Angular order of neighbors around u.
  std::vector<std::pair<double, NodeId>> by_angle;
  by_angle.reserve(nbrs.size());
  for (NodeId v : nbrs) by_angle.emplace_back(bearing(pu, g.position(v)), v);
  std::sort(by_angle.begin(), by_angle.end());

  // TENT rule, exact form. u is stuck for some destination just beyond the
  // radio disc in the angular gap between adjacent neighbors v1, v2 iff a
  // direction theta in the gap satisfies |r*theta - v_i| > r for both,
  // i.e. angle(theta, v_i) > alpha_i with alpha_i = arccos(|u v_i| / 2r).
  // Such a theta exists iff gap > alpha_1 + alpha_2. With |u v_i| <= r the
  // alphas are in [60, 90] degrees, recovering the classic "every gap below
  // 120 degrees is never stuck" bound.
  const double range = g.range();
  auto alpha = [&](NodeId v) {
    double cosv = std::clamp(distance(pu, g.position(v)) / (2.0 * range), 0.0, 1.0);
    return std::acos(cosv);
  };
  for (std::size_t i = 0; i < by_angle.size(); ++i) {
    const auto& [a1, v1] = by_angle[i];
    const auto& [a2, v2] = by_angle[(i + 1) % by_angle.size()];
    // Wrap-around pair: the sweep from the last bearing back to the first
    // covers the remainder of the circle (2*pi when all bearings coincide).
    double gap = ccw_delta(a1, a2);
    if (i + 1 == by_angle.size() && gap == 0.0) gap = kTwoPi;
    if (gap == 0.0) continue;
    if (gap > alpha(v1) + alpha(v2) + 1e-12) return true;
  }
  return false;
}

namespace {

/// One sweep step of the boundary walk: arriving at `u` from `prev`, the
/// next boundary node is the first neighbor counter-clockwise from the ray
/// u->prev (excluding prev itself unless it is the only neighbor).
NodeId boundary_step(const UnitDiskGraph& g, NodeId u, NodeId prev) {
  Vec2 pu = g.position(u);
  double start = bearing(pu, g.position(prev));
  NodeId pick = kInvalidNode;
  double best = 0.0;
  for (NodeId v : g.neighbors(u)) {
    if (v == prev) continue;
    double sweep = ccw_delta(start, bearing(pu, g.position(v)));
    if (sweep == 0.0) sweep = kTwoPi;  // collinear-behind goes last
    if (pick == kInvalidNode || sweep < best) {
      pick = v;
      best = sweep;
    }
  }
  return pick == kInvalidNode ? prev : pick;
}

/// Direction bisecting the widest angular gap of u's neighbors — the most
/// "hole-ward" direction, used to aim the first step of the walk.
double widest_gap_bisector(const UnitDiskGraph& g, NodeId u) {
  auto nbrs = g.neighbors(u);
  Vec2 pu = g.position(u);
  if (nbrs.empty()) return 0.0;
  std::vector<double> angles;
  angles.reserve(nbrs.size());
  for (NodeId v : nbrs) angles.push_back(bearing(pu, g.position(v)));
  std::sort(angles.begin(), angles.end());
  double best_gap = -1.0, best_mid = 0.0;
  for (std::size_t i = 0; i < angles.size(); ++i) {
    double a1 = angles[i];
    double a2 = angles[(i + 1) % angles.size()];
    double gap = ccw_delta(a1, a2);
    if (angles.size() == 1) gap = kTwoPi;
    if (gap > best_gap) {
      best_gap = gap;
      best_mid = normalize_angle(a1 + gap / 2.0);
    }
  }
  return best_mid;
}

}  // namespace

BoundHoleInfo::BoundHoleInfo(const UnitDiskGraph& g, std::size_t max_cycle_factor) {
  const std::size_t n = g.size();
  stuck_.assign(n, false);
  boundary_of_.assign(n, -1);
  cycle_pos_.assign(n, -1);

  for (NodeId u = 0; u < n; ++u) {
    if (g.alive(u) && g.degree(u) > 0) stuck_[u] = tent_rule_stuck(g, u);
  }

  const std::size_t cap = max_cycle_factor * std::max<std::size_t>(n, 1);
  for (NodeId t0 = 0; t0 < n; ++t0) {
    if (!stuck_[t0] || boundary_of_[t0] != -1) continue;
    if (g.degree(t0) < 2) continue;  // no cycle through a leaf

    // First step: sweep counter-clockwise from the hole-ward direction.
    Vec2 p0 = g.position(t0);
    double aim = widest_gap_bisector(g, t0);
    NodeId t1 = kInvalidNode;
    double best = kTwoPi + 1.0;
    for (NodeId v : g.neighbors(t0)) {
      double sweep = ccw_delta(aim, bearing(p0, g.position(v)));
      if (sweep < best) {
        best = sweep;
        t1 = v;
      }
    }
    if (t1 == kInvalidNode) continue;

    std::vector<NodeId> cycle{t0, t1};
    NodeId prev = t0, cur = t1;
    bool closed = false;
    for (std::size_t step = 0; step < cap; ++step) {
      NodeId next = boundary_step(g, cur, prev);
      if (next == t0 && cur != t0) {
        closed = true;
        break;
      }
      cycle.push_back(next);
      prev = cur;
      cur = next;
    }
    if (!closed || cycle.size() < 3) continue;

    // Discard degenerate mega-walks: a genuine hole boundary is a small
    // fraction of the network (its node count scales with the hole
    // perimeter). Self-crossing sweeps can "close" after wandering most of
    // the graph; walking those during recovery would dwarf the detour the
    // boundary is meant to shorten.
    if (cycle.size() > std::max<std::size_t>(16, n / 4)) continue;

    // Discard the outer face: a "boundary" that encircles most of the
    // deployment is the network edge, not a hole (the BOUNDHOLE paper
    // excludes it as well). Detected by loop area against the field.
    {
      double area2 = 0.0;
      for (std::size_t i = 0, j = cycle.size() - 1; i < cycle.size(); j = i++) {
        area2 += g.position(cycle[j]).cross(g.position(cycle[i]));
      }
      double loop_area = std::abs(0.5 * area2);
      double field_area = g.bounds().area();
      if (field_area > 0.0 && loop_area > 0.4 * field_area) continue;
    }

    int index = static_cast<int>(boundaries_.size());
    // A node can appear twice in a degenerate sweep; keep the first slot.
    for (std::size_t i = 0; i < cycle.size(); ++i) {
      NodeId v = cycle[i];
      if (boundary_of_[v] == -1) {
        boundary_of_[v] = index;
        cycle_pos_[v] = static_cast<int>(i);
      }
    }
    boundaries_.push_back(HoleBoundary{std::move(cycle)});
  }
}

std::size_t BoundHoleInfo::stuck_count() const noexcept {
  return static_cast<std::size_t>(std::count(stuck_.begin(), stuck_.end(), true));
}

}  // namespace spr
