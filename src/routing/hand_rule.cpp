#include "routing/hand_rule.h"

namespace spr {

NodeId first_by_rotation(const UnitDiskGraph& g, NodeId u, double start_bearing,
                         Hand hand, const NodeFilter& keep) {
  Vec2 pu = g.position(u);
  NodeId pick = kInvalidNode;
  double best_sweep = 0.0;
  double best_dist = 0.0;
  for (NodeId v : g.neighbors(u)) {
    if (keep && !keep(v)) continue;
    Vec2 pv = g.position(v);
    double b = bearing(pu, pv);
    double sweep = hand == Hand::kRight ? ccw_delta(start_bearing, b)
                                        : cw_delta(start_bearing, b);
    double dist = distance_sq(pu, pv);
    if (pick == kInvalidNode || sweep < best_sweep ||
        (sweep == best_sweep && dist < best_dist)) {
      pick = v;
      best_sweep = sweep;
      best_dist = dist;
    }
  }
  return pick;
}

NodeId first_by_rotation_from(const UnitDiskGraph& g, NodeId u, Vec2 dest,
                              Hand hand, const NodeFilter& keep) {
  return first_by_rotation(g, u, bearing(g.position(u), dest), hand, keep);
}

}  // namespace spr
