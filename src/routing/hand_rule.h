#pragma once

/// \file hand_rule.h
/// Ray-rotation successor selection. Algorithm 1's perimeter step is
/// "rotate the ray u->d counter-clockwise until the first untried node is
/// hit" — the *right-hand* rule in the paper's terminology; the left hand
/// rotates clockwise. SLGF2's "either-hand rule" picks one of the two and
/// sticks with it.

#include "geometry/angle.h"
#include "graph/unit_disk.h"
#include "routing/greedy_util.h"
#include "safety/regions.h"

namespace spr {

/// First neighbor of u hit when rotating a ray from `start_bearing` in the
/// direction of `hand` (kRight = counter-clockwise, kLeft = clockwise),
/// restricted to nodes passing `keep`. A neighbor exactly on the start ray
/// is hit immediately (sweep 0). Ties on sweep break toward the nearer
/// node. kInvalidNode when no eligible neighbor exists.
NodeId first_by_rotation(const UnitDiskGraph& g, NodeId u, double start_bearing,
                         Hand hand, const NodeFilter& keep = {});

/// Convenience: rotation start at the ray u->dest.
NodeId first_by_rotation_from(const UnitDiskGraph& g, NodeId u, Vec2 dest,
                              Hand hand, const NodeFilter& keep = {});

}  // namespace spr
