#include "routing/slgf2.h"

#include <optional>
#include <vector>

#include "geometry/segment.h"
#include "routing/greedy_util.h"
#include "routing/hand_rule.h"
#include "safety/regions.h"

namespace spr {

struct Slgf2Router::Header final : public PacketHeader {
  enum class Mode { kNormal, kBackup, kPerimeter };
  Mode mode = Mode::kNormal;
  Hand hand = Hand::kRight;
  bool hand_committed = false;
  std::optional<Rect> perimeter_rect;
  std::vector<bool> visited;
};

std::unique_ptr<PacketHeader> Slgf2Router::make_header(NodeId s, NodeId) const {
  auto header = std::make_unique<Header>();
  header->visited.assign(graph().size(), false);
  header->visited[s] = true;
  return header;
}

bool Slgf2Router::reset_header(PacketHeader& header, NodeId s, NodeId) const {
  auto& h = static_cast<Header&>(header);
  h.mode = Header::Mode::kNormal;
  h.hand = Hand::kRight;
  h.hand_committed = false;
  h.perimeter_rect.reset();
  h.visited.assign(graph().size(), false);
  h.visited[s] = true;
  return true;
}

std::vector<PathResult> Slgf2Router::route_batch(
    std::span<const std::pair<NodeId, NodeId>> pairs,
    const RouteOptions& options) const {
  return route_batch_reusing_headers(pairs, options);
}

Router::Decision Slgf2Router::select_successor(NodeId u, NodeId d,
                                               PacketHeader& header) const {
  auto& h = static_cast<Header&>(header);
  h.visited[u] = true;
  const UnitDiskGraph& g = graph();

  // Step 1: direct delivery.
  if (g.are_neighbors(u, d)) return {d, HopPhase::kGreedy, false};

  Vec2 dest = g.position(d);
  std::vector<UnsafeAreaEstimate> estimates = visible_estimates(g, safety_, u);
  // Note: backup mode has deliberately *no* distance-based exit. Algorithm 3
  // step 4 keeps the committed hand "until the forwarding from v to d is
  // safe" — releasing it on mere distance progress re-chooses the hand next
  // to the same obstacle and can reverse the walk (measurably worse on the
  // blocked-field scenario test).

  // Superseding rule (step 3): a candidate is disqualified when it falls in
  // the forbidden region of a visible estimate whose critical region
  // contains d *and* which actually blocks the straight line to d (the rule
  // exists to avoid detours around the area's edge; estimates away from the
  // u->d line are irrelevant). Applied softly: if it would eliminate every
  // candidate the unfiltered choice stands ("prefer", not "require").
  Vec2 pu = g.position(u);

  // "Blocks the straight line": the estimate's rectangle intersects the
  // segment u->d *ahead of u*. The start is nudged forward by a sliver of
  // the radio range so rectangles merely touching u's own position (every
  // estimate u owns has u as a corner, and so can a neighbor's) don't
  // count as blocking when they lie entirely behind the travel direction.
  auto blocks_line = [&](const UnsafeAreaEstimate& e) {
    Vec2 dir = dest - pu;
    double len = dir.norm();
    if (len < 1e-9) return false;
    double nudge = std::min(0.01 * g.range(), 0.5 * len);
    Vec2 start = pu + dir * (nudge / len);
    return segment_intersects_rect({start, dest}, e.rect);
  };

  auto forbidden = [&](NodeId v) {
    if (!options_.use_either_hand) return false;
    Vec2 pv = g.position(v);
    for (const auto& e : estimates) {
      if (!blocks_line(e)) continue;
      if (in_forbidden_region(e, dest, pv)) return true;
    }
    return false;
  };

  // Step 2: safe forwarding — v safe in its own zone type toward d.
  // Visited nodes are excluded: the router is deterministic, so stepping
  // back onto the path can only repeat the decision that left it (the
  // degenerate thin-zone case otherwise ping-pongs between a wall node and
  // its backup successors until the neighborhood is exhausted).
  auto safe_toward_d = [&](NodeId v) {
    return !h.visited[v] && safety_.is_safe(v, zone_type(g.position(v), dest));
  };
  NodeId safe_pick = zone_greedy_successor(g, u, dest, [&](NodeId v) {
    return safe_toward_d(v) && !forbidden(v);
  });
  if (safe_pick == kInvalidNode) {
    safe_pick = zone_greedy_successor(g, u, dest, safe_toward_d);
  }
  if (safe_pick != kInvalidNode) {
    // Safe forwarding found: leave any detour mode (the backup hand commit
    // lasts only "until ... a safe forwarding", Algorithm 3 step 4).
    if (h.mode == Header::Mode::kBackup) {
      h.mode = Header::Mode::kNormal;
      h.hand_committed = false;  // backup hand lasts only until safe forwarding
    }
    h.visited[safe_pick] = true;
    return {safe_pick, HopPhase::kGreedy, false};
  }

  // Commit a hand for the detour from the destination's side of the
  // blocking estimate. Preference order: an estimate that actually blocks
  // the straight line to d (own over neighbors'), then any estimate whose
  // quadrant contains d, then the right hand. Perimeter mode never
  // re-commits.
  auto commit_hand = [&] {
    if (h.hand_committed) return;
    const UnsafeAreaEstimate* blocking = nullptr;
    int best_rank = 0;  // higher wins: 4 = own+blocks, 3 = blocks, 2 = own, 1 = quadrant
    for (const auto& e : estimates) {
      if (!in_quadrant(e.origin, dest, e.type)) continue;
      bool own = e.owner == u;
      bool blocks = blocks_line(e);
      int rank = blocks ? (own ? 4 : 3) : (own ? 2 : 1);
      if (rank > best_rank) {
        best_rank = rank;
        blocking = &e;
      }
    }
    h.hand = blocking != nullptr ? choose_hand(*blocking, dest) : Hand::kRight;
    h.hand_committed = true;
  };

  // Step 4: backup-path forwarding through nodes safe in some type. The
  // side decision is made once, by the committed hand: re-applying the
  // forbidden-region filter per hop against estimates that become visible
  // mid-detour can reverse an in-progress walk — exactly the oscillation
  // the paper's "stick with the same hand-rule" clause rules out — so the
  // filter applies only to the first hop of a detour.
  if (options_.use_backup_paths) {
    bool first_detour_hop = h.mode != Header::Mode::kBackup;
    commit_hand();
    auto backup_ok = [&](NodeId v) {
      return !h.visited[v] && safety_.tuple(v).any_safe();
    };
    NodeId v = kInvalidNode;
    if (first_detour_hop) {
      v = first_by_rotation_from(g, u, dest, h.hand, [&](NodeId w) {
        return backup_ok(w) && !forbidden(w);
      });
    }
    if (v == kInvalidNode) {
      v = first_by_rotation_from(g, u, dest, h.hand, backup_ok);
    }
    if (v != kInvalidNode) {
      h.mode = Header::Mode::kBackup;
      h.visited[v] = true;
      return {v, HopPhase::kBackup, false};
    }
  } else {
    // Ablation: SLGF-style enforced greedy entry into the unsafe zone.
    if (NodeId v = zone_greedy_successor(g, u, dest); v != kInvalidNode) {
      h.visited[v] = true;
      return {v, HopPhase::kGreedy, false};
    }
  }

  // Step 5: perimeter routing, hand kept until delivery, confined to the
  // rectangle covering the advertised estimates.
  bool new_minimum = h.mode != Header::Mode::kPerimeter;
  if (new_minimum) {
    commit_hand();
    h.mode = Header::Mode::kPerimeter;
    if (options_.limit_perimeter) {
      h.perimeter_rect = covering_rect(estimates, g.range());
    }
  }
  auto perimeter_ok = [&](NodeId v) {
    if (h.visited[v]) return false;
    if (h.perimeter_rect && !h.perimeter_rect->contains(g.position(v))) {
      return false;
    }
    return true;
  };
  NodeId v = first_by_rotation_from(g, u, dest, h.hand, perimeter_ok);
  if (v == kInvalidNode && h.perimeter_rect) {
    // The confined region is exhausted; release the restriction rather than
    // dropping a deliverable packet.
    h.perimeter_rect.reset();
    v = first_by_rotation_from(g, u, dest, h.hand,
                               [&](NodeId w) { return !h.visited[w]; });
  }
  if (v == kInvalidNode) return {kInvalidNode, HopPhase::kPerimeter, new_minimum};
  h.visited[v] = true;
  return {v, HopPhase::kPerimeter, new_minimum};
}

}  // namespace spr
