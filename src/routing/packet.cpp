#include "routing/packet.h"

#include <algorithm>
#include <sstream>

namespace spr {

namespace {
std::size_t count_phase(const std::vector<HopPhase>& phases, HopPhase p) {
  return static_cast<std::size_t>(std::count(phases.begin(), phases.end(), p));
}
}  // namespace

std::size_t PathResult::greedy_hops() const noexcept {
  return count_phase(hop_phases, HopPhase::kGreedy);
}
std::size_t PathResult::backup_hops() const noexcept {
  return count_phase(hop_phases, HopPhase::kBackup);
}
std::size_t PathResult::perimeter_hops() const noexcept {
  return count_phase(hop_phases, HopPhase::kPerimeter);
}

std::string PathResult::to_string() const {
  std::ostringstream out;
  switch (status) {
    case RouteStatus::kDelivered: out << "delivered"; break;
    case RouteStatus::kTtlExpired: out << "ttl-expired"; break;
    case RouteStatus::kDeadEnd: out << "dead-end"; break;
  }
  out << " hops=" << hops() << " length=" << length
      << " (greedy=" << greedy_hops() << " backup=" << backup_hops()
      << " perimeter=" << perimeter_hops() << ", minima=" << local_minima << ")";
  return out.str();
}

}  // namespace spr
