#pragma once

/// \file packet.h
/// Routing outcomes and per-run accounting. The benches aggregate these
/// into the paper's metrics (hops, path length) and our auxiliary ones
/// (delivery ratio, phase mix, stretch).

#include <cstddef>
#include <string>
#include <vector>

#include "graph/node.h"

namespace spr {

/// Why a routing run ended.
enum class RouteStatus {
  kDelivered,  ///< destination reached
  kTtlExpired, ///< hop budget exhausted (treated as a failure)
  kDeadEnd,    ///< no eligible successor anywhere (disconnected or looped out)
};

/// Which forwarding phase produced a hop (paper Section 4 terminology).
enum class HopPhase : unsigned char {
  kGreedy,     ///< greedy / safe forwarding
  kBackup,     ///< SLGF2 backup-path forwarding
  kPerimeter,  ///< perimeter recovery (right-hand / either-hand / face)
};

/// Full result of routing one packet.
struct PathResult {
  RouteStatus status = RouteStatus::kDeadEnd;
  std::vector<NodeId> path;           ///< visited nodes, s first; d last iff delivered
  std::vector<HopPhase> hop_phases;   ///< phase of each hop (path.size()-1 entries)
  double length = 0.0;                ///< total Euclidean length, meters

  std::size_t hops() const noexcept { return path.empty() ? 0 : path.size() - 1; }
  bool delivered() const noexcept { return status == RouteStatus::kDelivered; }

  std::size_t greedy_hops() const noexcept;
  std::size_t backup_hops() const noexcept;
  std::size_t perimeter_hops() const noexcept;

  /// Number of local minima encountered (greedy->perimeter transitions).
  std::size_t local_minima = 0;

  std::string to_string() const;
};

/// Per-run knobs shared by all routers.
struct RouteOptions {
  /// TTL = ttl_factor * n hops; generous so that only genuine livelock or
  /// disconnection trips it.
  std::size_t ttl_factor = 8;
};

}  // namespace spr
