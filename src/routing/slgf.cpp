#include "routing/slgf.h"

#include <vector>

#include "routing/greedy_util.h"
#include "routing/hand_rule.h"

namespace spr {

namespace {
struct SlgfHeader final : public PacketHeader {
  std::vector<bool> visited;
  bool in_perimeter = false;
  double stuck_dist = 0.0;
};
}  // namespace

std::unique_ptr<PacketHeader> SlgfRouter::make_header(NodeId s, NodeId) const {
  auto header = std::make_unique<SlgfHeader>();
  header->visited.assign(graph().size(), false);
  header->visited[s] = true;
  return header;
}

bool SlgfRouter::reset_header(PacketHeader& header, NodeId s, NodeId) const {
  auto& h = static_cast<SlgfHeader&>(header);
  h.visited.assign(graph().size(), false);
  h.visited[s] = true;
  h.in_perimeter = false;
  h.stuck_dist = 0.0;
  return true;
}

std::vector<PathResult> SlgfRouter::route_batch(
    std::span<const std::pair<NodeId, NodeId>> pairs,
    const RouteOptions& options) const {
  return route_batch_reusing_headers(pairs, options);
}

Router::Decision SlgfRouter::select_successor(NodeId u, NodeId d,
                                              PacketHeader& header) const {
  auto& h = static_cast<SlgfHeader&>(header);
  h.visited[u] = true;
  const UnitDiskGraph& g = graph();

  if (g.are_neighbors(u, d)) {
    h.in_perimeter = false;
    return {d, HopPhase::kGreedy, false};
  }

  Vec2 dest = g.position(d);
  // Perimeter exit rule of [2]: resume greedy once strictly closer to d
  // than the stuck node.
  if (h.in_perimeter && distance(g.position(u), dest) < h.stuck_dist) {
    h.in_perimeter = false;
  }

  if (!h.in_perimeter) {
    // Safe forwarding: v's own request zone toward d must be a safe type.
    auto safe_toward_d = [&](NodeId v) {
      return safety_.is_safe(v, zone_type(g.position(v), dest));
    };
    if (NodeId v = zone_greedy_successor(g, u, dest, safe_toward_d);
        v != kInvalidNode) {
      h.visited[v] = true;
      return {v, HopPhase::kGreedy, false};
    }

    // Enforced greedy into the zone (may enter an unsafe area).
    if (NodeId v = zone_greedy_successor(g, u, dest); v != kInvalidNode) {
      h.visited[v] = true;
      return {v, HopPhase::kGreedy, false};
    }
  }

  // Local minimum: right-hand perimeter over untried nodes.
  bool new_minimum = !h.in_perimeter;
  if (new_minimum) {
    h.in_perimeter = true;
    h.stuck_dist = distance(g.position(u), dest);
  }
  NodeId v = first_by_rotation_from(
      g, u, dest, Hand::kRight, [&](NodeId w) { return !h.visited[w]; });
  if (v == kInvalidNode) return {kInvalidNode, HopPhase::kPerimeter, new_minimum};
  h.visited[v] = true;
  return {v, HopPhase::kPerimeter, new_minimum};
}

}  // namespace spr
