#pragma once

/// \file rect.h
/// Axis-aligned rectangles. The paper's notation [x1 : x2, y1 : y2] denotes
/// the rectangle with corners (x1,y1), (x1,y2), (x2,y2), (x2,y1); the
/// coordinates need not be ordered — `Rect::from_corners` normalizes.

#include <iosfwd>

#include "geometry/vec2.h"

namespace spr {

/// Closed axis-aligned rectangle [lo.x, hi.x] x [lo.y, hi.y].
/// Invariant: lo.x <= hi.x and lo.y <= hi.y.
class Rect {
 public:
  constexpr Rect() = default;

  /// Normalizing constructor for the paper's [x1 : x2, y1 : y2] notation.
  static constexpr Rect from_corners(Vec2 a, Vec2 b) noexcept {
    Rect r;
    r.lo_ = {a.x < b.x ? a.x : b.x, a.y < b.y ? a.y : b.y};
    r.hi_ = {a.x > b.x ? a.x : b.x, a.y > b.y ? a.y : b.y};
    return r;
  }

  /// Rectangle from ordered bounds; requires lo <= hi componentwise.
  static constexpr Rect from_bounds(Vec2 lo, Vec2 hi) noexcept {
    return from_corners(lo, hi);
  }

  constexpr Vec2 lo() const noexcept { return lo_; }
  constexpr Vec2 hi() const noexcept { return hi_; }
  constexpr Vec2 center() const noexcept { return midpoint(lo_, hi_); }
  constexpr double width() const noexcept { return hi_.x - lo_.x; }
  constexpr double height() const noexcept { return hi_.y - lo_.y; }
  constexpr double area() const noexcept { return width() * height(); }

  constexpr bool operator==(const Rect&) const noexcept = default;

  /// Closed containment (boundary counts as inside, matching the paper's
  /// request zones which include u and d on the corners).
  constexpr bool contains(Vec2 p) const noexcept {
    return p.x >= lo_.x && p.x <= hi_.x && p.y >= lo_.y && p.y <= hi_.y;
  }

  /// Containment with a tolerance band of `eps` around the boundary.
  constexpr bool contains(Vec2 p, double eps) const noexcept {
    return p.x >= lo_.x - eps && p.x <= hi_.x + eps && p.y >= lo_.y - eps &&
           p.y <= hi_.y + eps;
  }

  constexpr bool contains(const Rect& other) const noexcept {
    return contains(other.lo_) && contains(other.hi_);
  }

  constexpr bool intersects(const Rect& other) const noexcept {
    return lo_.x <= other.hi_.x && hi_.x >= other.lo_.x &&
           lo_.y <= other.hi_.y && hi_.y >= other.lo_.y;
  }

  /// Smallest rectangle containing both; `this` if `other` is empty-like.
  constexpr Rect united(const Rect& other) const noexcept {
    Rect r;
    r.lo_ = {lo_.x < other.lo_.x ? lo_.x : other.lo_.x,
             lo_.y < other.lo_.y ? lo_.y : other.lo_.y};
    r.hi_ = {hi_.x > other.hi_.x ? hi_.x : other.hi_.x,
             hi_.y > other.hi_.y ? hi_.y : other.hi_.y};
    return r;
  }

  /// Rectangle grown by `margin` on every side (shrunk if negative; collapses
  /// to its center when over-shrunk).
  constexpr Rect inflated(double margin) const noexcept {
    Vec2 lo{lo_.x - margin, lo_.y - margin};
    Vec2 hi{hi_.x + margin, hi_.y + margin};
    if (lo.x > hi.x) lo.x = hi.x = (lo.x + hi.x) * 0.5;
    if (lo.y > hi.y) lo.y = hi.y = (lo.y + hi.y) * 0.5;
    return from_corners(lo, hi);
  }

  /// Grows the rectangle to include `p`.
  constexpr Rect expanded_to(Vec2 p) const noexcept {
    return united(from_corners(p, p));
  }

  /// Euclidean distance from `p` to the rectangle (0 when inside).
  double distance_to(Vec2 p) const noexcept;

 private:
  Vec2 lo_{0.0, 0.0};
  Vec2 hi_{0.0, 0.0};
};

std::ostream& operator<<(std::ostream& os, const Rect& r);

}  // namespace spr
