#pragma once

/// \file vec2.h
/// 2-D point/vector type used throughout the library. The paper's node
/// locations L(u) = (x_u, y_u) are Vec2 values in meters.

#include <cmath>
#include <iosfwd>

namespace spr {

/// Plain 2-D vector over double. Regular type: copyable, comparable.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double x_, double y_) : x(x_), y(y_) {}

  constexpr Vec2 operator+(Vec2 o) const noexcept { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const noexcept { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const noexcept { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const noexcept { return {x / s, y / s}; }
  constexpr Vec2& operator+=(Vec2 o) noexcept { x += o.x; y += o.y; return *this; }
  constexpr Vec2& operator-=(Vec2 o) noexcept { x -= o.x; y -= o.y; return *this; }

  constexpr bool operator==(const Vec2&) const noexcept = default;

  constexpr double dot(Vec2 o) const noexcept { return x * o.x + y * o.y; }
  /// z-component of the 3-D cross product; >0 when `o` is counter-clockwise
  /// from *this.
  constexpr double cross(Vec2 o) const noexcept { return x * o.y - y * o.x; }

  double norm() const noexcept { return std::hypot(x, y); }
  constexpr double norm_sq() const noexcept { return x * x + y * y; }

  /// Unit vector; returns (0,0) for the zero vector.
  Vec2 normalized() const noexcept {
    double n = norm();
    return n > 0.0 ? Vec2{x / n, y / n} : Vec2{};
  }

  /// 90-degree counter-clockwise rotation.
  constexpr Vec2 perp() const noexcept { return {-y, x}; }
};

constexpr Vec2 operator*(double s, Vec2 v) noexcept { return v * s; }

/// |L(u) - L(v)| in the paper's notation.
inline double distance(Vec2 a, Vec2 b) noexcept { return (a - b).norm(); }
constexpr double distance_sq(Vec2 a, Vec2 b) noexcept { return (a - b).norm_sq(); }

/// Midpoint of segment ab.
constexpr Vec2 midpoint(Vec2 a, Vec2 b) noexcept {
  return {(a.x + b.x) * 0.5, (a.y + b.y) * 0.5};
}

/// Orientation of the ordered triple (a, b, c):
/// >0 counter-clockwise, <0 clockwise, 0 collinear.
constexpr double orient(Vec2 a, Vec2 b, Vec2 c) noexcept {
  return (b - a).cross(c - a);
}

/// True when `p` is within `eps` of `q`.
inline bool almost_equal(Vec2 p, Vec2 q, double eps = 1e-9) noexcept {
  return distance_sq(p, q) <= eps * eps;
}

std::ostream& operator<<(std::ostream& os, Vec2 v);

}  // namespace spr
