#pragma once

/// \file quadrant.h
/// LAR-scheme-1 request zones and the four forwarding-zone types.
///
/// Following the paper's Section 3: the request zone Z_i(u,d) is the
/// rectangle [x_u : x_d, y_u : y_d]; its type i in {1..4} is the quadrant of
/// d relative to u (1 = Northeast/I, 2 = Northwest/II, 3 = Southwest/III,
/// 4 = Southeast/IV). Q_i(u) is the corresponding unbounded quadrant and a
/// greedy advance within Z_i(u,d) is a "type-i forwarding".
///
/// Boundary convention (half-open so every point except u itself belongs to
/// exactly one quadrant): type 1 includes both bounding axes (x >= x_u and
/// y >= y_u), type 2 includes the -x axis, type 3 neither, type 4 the -y
/// axis. Formally: type 1 = {x>=x_u, y>=y_u}, type 2 = {x<x_u, y>=y_u},
/// type 3 = {x<x_u, y<y_u}, type 4 = {x>=x_u, y<y_u}.

#include <array>
#include <cstdint>
#include <iosfwd>

#include "geometry/angle.h"
#include "geometry/rect.h"
#include "geometry/vec2.h"

namespace spr {

/// Forwarding-zone / request-zone type. Values are the paper's 1..4.
enum class ZoneType : std::uint8_t { k1 = 1, k2 = 2, k3 = 3, k4 = 4 };

inline constexpr std::array<ZoneType, 4> kAllZoneTypes = {
    ZoneType::k1, ZoneType::k2, ZoneType::k3, ZoneType::k4};

/// 0-based index for array storage.
constexpr int zone_index(ZoneType t) noexcept { return static_cast<int>(t) - 1; }
constexpr ZoneType zone_from_index(int i) noexcept {
  return static_cast<ZoneType>(i + 1);
}

/// The paper's k' = (k+2) Mod 4 (1-based): the type of the request zone seen
/// from the other endpoint. 1<->3, 2<->4.
constexpr ZoneType opposite_zone(ZoneType t) noexcept {
  return zone_from_index((zone_index(t) + 2) % 4);
}

/// Quadrant of `d` relative to `u` (the type of Z(u,d)). Requires d != u
/// conceptually; for d == u returns type 1 by the boundary convention.
constexpr ZoneType zone_type(Vec2 u, Vec2 d) noexcept {
  if (d.x >= u.x) {
    return d.y >= u.y ? ZoneType::k1 : ZoneType::k4;
  }
  return d.y >= u.y ? ZoneType::k2 : ZoneType::k3;
}

/// Membership of p in the unbounded quadrant Q_t(u). Consistent with
/// `zone_type`: for p != u, in_quadrant(u, p, t) iff zone_type(u, p) == t.
constexpr bool in_quadrant(Vec2 u, Vec2 p, ZoneType t) noexcept {
  switch (t) {
    case ZoneType::k1: return p.x >= u.x && p.y >= u.y;
    case ZoneType::k2: return p.x < u.x && p.y >= u.y;
    case ZoneType::k3: return p.x < u.x && p.y < u.y;
    case ZoneType::k4: return p.x >= u.x && p.y < u.y;
  }
  return false;
}

/// The request zone rectangle Z(u,d) = [x_u : x_d, y_u : y_d].
constexpr Rect request_zone(Vec2 u, Vec2 d) noexcept {
  return Rect::from_corners(u, d);
}

/// Membership of p in Z(u,d). The zone is closed (u and d included).
constexpr bool in_request_zone(Vec2 u, Vec2 d, Vec2 p) noexcept {
  return request_zone(u, d).contains(p);
}

/// Bearing of the clockwise boundary axis of Q_t: quadrant t spans bearings
/// [(t-1)*pi/2, t*pi/2]. The paper's shape scan rotates a ray counter-
/// clockwise across Q_i starting from this axis.
constexpr double quadrant_start_bearing(ZoneType t) noexcept {
  return (static_cast<int>(t) - 1) * (kPi / 2.0);
}

/// Unit vector along the quadrant's diagonal (45 degrees into Q_t); useful
/// as the "into the quadrant" direction.
Vec2 quadrant_diagonal(ZoneType t) noexcept;

/// The quadrant's x/y direction signs: (+1,+1) for type 1, (-1,+1) for 2,
/// (-1,-1) for 3, (+1,-1) for 4.
constexpr Vec2 quadrant_signs(ZoneType t) noexcept {
  switch (t) {
    case ZoneType::k1: return {1.0, 1.0};
    case ZoneType::k2: return {-1.0, 1.0};
    case ZoneType::k3: return {-1.0, -1.0};
    case ZoneType::k4: return {1.0, -1.0};
  }
  return {1.0, 1.0};
}

std::ostream& operator<<(std::ostream& os, ZoneType t);

}  // namespace spr
