#include "geometry/segment.h"

#include <algorithm>
#include <cmath>

#include "geometry/rect.h"

namespace spr {

bool on_segment(const Segment& s, Vec2 p, double eps) noexcept {
  return point_segment_distance(p, s) <= eps;
}

namespace {
int sign_of(double v, double eps = 1e-12) noexcept {
  if (v > eps) return 1;
  if (v < -eps) return -1;
  return 0;
}

bool bounding_boxes_overlap(const Segment& s1, const Segment& s2) noexcept {
  auto [ax0, ax1] = std::minmax(s1.a.x, s1.b.x);
  auto [ay0, ay1] = std::minmax(s1.a.y, s1.b.y);
  auto [bx0, bx1] = std::minmax(s2.a.x, s2.b.x);
  auto [by0, by1] = std::minmax(s2.a.y, s2.b.y);
  return ax0 <= bx1 && bx0 <= ax1 && ay0 <= by1 && by0 <= ay1;
}
}  // namespace

bool segments_intersect(const Segment& s1, const Segment& s2) noexcept {
  int d1 = sign_of(orient(s2.a, s2.b, s1.a));
  int d2 = sign_of(orient(s2.a, s2.b, s1.b));
  int d3 = sign_of(orient(s1.a, s1.b, s2.a));
  int d4 = sign_of(orient(s1.a, s1.b, s2.b));
  if (((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
      ((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0))) {
    return true;
  }
  // Collinear / endpoint-touching cases.
  if (d1 == 0 && d2 == 0 && d3 == 0 && d4 == 0) return bounding_boxes_overlap(s1, s2);
  if (d1 == 0 && on_segment(s2, s1.a)) return true;
  if (d2 == 0 && on_segment(s2, s1.b)) return true;
  if (d3 == 0 && on_segment(s1, s2.a)) return true;
  if (d4 == 0 && on_segment(s1, s2.b)) return true;
  return false;
}

bool segments_cross_properly(const Segment& s1, const Segment& s2) noexcept {
  int d1 = sign_of(orient(s2.a, s2.b, s1.a));
  int d2 = sign_of(orient(s2.a, s2.b, s1.b));
  int d3 = sign_of(orient(s1.a, s1.b, s2.a));
  int d4 = sign_of(orient(s1.a, s1.b, s2.b));
  return ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
         ((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0));
}

std::optional<Vec2> line_intersection(const Segment& s1, const Segment& s2) noexcept {
  Vec2 r = s1.b - s1.a;
  Vec2 s = s2.b - s2.a;
  double denom = r.cross(s);
  if (std::abs(denom) < 1e-12) return std::nullopt;
  double t = (s2.a - s1.a).cross(s) / denom;
  return s1.a + r * t;
}

std::optional<Vec2> segment_intersection(const Segment& s1, const Segment& s2) noexcept {
  if (!segments_intersect(s1, s2)) return std::nullopt;
  Vec2 r = s1.b - s1.a;
  Vec2 s = s2.b - s2.a;
  double denom = r.cross(s);
  if (std::abs(denom) < 1e-12) {
    // Collinear overlap: return an endpoint that lies on the other segment.
    for (Vec2 p : {s1.a, s1.b, s2.a, s2.b}) {
      if (on_segment(s1, p) && on_segment(s2, p)) return p;
    }
    return std::nullopt;
  }
  double t = (s2.a - s1.a).cross(s) / denom;
  return s1.a + r * t;
}

double point_segment_distance(Vec2 p, const Segment& s) noexcept {
  Vec2 ab = s.b - s.a;
  double len_sq = ab.norm_sq();
  if (len_sq <= 0.0) return distance(p, s.a);
  double t = std::clamp((p - s.a).dot(ab) / len_sq, 0.0, 1.0);
  return distance(p, s.a + ab * t);
}

bool segment_intersects_rect(const Segment& s, const Rect& r) noexcept {
  if (r.contains(s.a) || r.contains(s.b)) return true;
  Vec2 lo = r.lo(), hi = r.hi();
  Segment edges[4] = {{lo, {hi.x, lo.y}},
                      {{hi.x, lo.y}, hi},
                      {hi, {lo.x, hi.y}},
                      {{lo.x, hi.y}, lo}};
  for (const Segment& e : edges) {
    if (segments_intersect(s, e)) return true;
  }
  return false;
}

std::optional<Vec2> circumcenter(Vec2 u, Vec2 v1, Vec2 v2) noexcept {
  // Solve |c - u|^2 = |c - v1|^2 = |c - v2|^2 as a 2x2 linear system.
  double ax = v1.x - u.x, ay = v1.y - u.y;
  double bx = v2.x - u.x, by = v2.y - u.y;
  double det = 2.0 * (ax * by - ay * bx);
  if (std::abs(det) < 1e-12) return std::nullopt;
  double a2 = ax * ax + ay * ay;
  double b2 = bx * bx + by * by;
  double cx = (by * a2 - ay * b2) / det;
  double cy = (ax * b2 - bx * a2) / det;
  return Vec2{u.x + cx, u.y + cy};
}

}  // namespace spr
