#include "geometry/hull.h"

#include <algorithm>
#include <limits>
#include <map>

#include "geometry/segment.h"

namespace spr {

std::vector<Vec2> convex_hull(std::vector<Vec2> points) {
  std::sort(points.begin(), points.end(), [](Vec2 a, Vec2 b) {
    return a.x < b.x || (a.x == b.x && a.y < b.y);
  });
  points.erase(std::unique(points.begin(), points.end()), points.end());
  const std::size_t n = points.size();
  if (n < 3) return points;

  std::vector<Vec2> hull(2 * n);
  std::size_t k = 0;
  // Lower chain.
  for (std::size_t i = 0; i < n; ++i) {
    while (k >= 2 && orient(hull[k - 2], hull[k - 1], points[i]) <= 0.0) --k;
    hull[k++] = points[i];
  }
  // Upper chain.
  for (std::size_t i = n - 1, t = k + 1; i-- > 0;) {
    while (k >= t && orient(hull[k - 2], hull[k - 1], points[i]) <= 0.0) --k;
    hull[k++] = points[i];
  }
  hull.resize(k - 1);  // last point equals the first
  return hull;
}

std::vector<std::size_t> convex_hull_indices(const std::vector<Vec2>& points) {
  auto hull = convex_hull(points);
  std::map<std::pair<double, double>, std::size_t> first_index;
  for (std::size_t i = 0; i < points.size(); ++i) {
    first_index.emplace(std::make_pair(points[i].x, points[i].y), i);
  }
  std::vector<std::size_t> idx;
  idx.reserve(hull.size());
  for (Vec2 v : hull) idx.push_back(first_index.at({v.x, v.y}));
  return idx;
}

Polygon convex_hull_polygon(const std::vector<Vec2>& points) {
  return Polygon(convex_hull(points));
}

double distance_to_hull_boundary(const std::vector<Vec2>& hull, Vec2 p) {
  const std::size_t n = hull.size();
  if (n == 0) return std::numeric_limits<double>::infinity();
  if (n == 1) return distance(hull[0], p);
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    best = std::min(best, point_segment_distance(p, {hull[j], hull[i]}));
  }
  return best;
}

}  // namespace spr
