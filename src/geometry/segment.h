#pragma once

/// \file segment.h
/// Line segments and the intersection predicates used by planarization
/// checks and face routing.

#include <optional>

#include "geometry/vec2.h"

namespace spr {

/// Closed segment from a to b.
struct Segment {
  Vec2 a;
  Vec2 b;

  double length() const noexcept { return distance(a, b); }
  Vec2 direction() const noexcept { return (b - a).normalized(); }

  /// Point at parameter t in [0,1].
  constexpr Vec2 at(double t) const noexcept { return a + (b - a) * t; }
};

/// True when p lies on segment s (within eps).
bool on_segment(const Segment& s, Vec2 p, double eps = 1e-9) noexcept;

/// Proper or improper intersection test between closed segments.
bool segments_intersect(const Segment& s1, const Segment& s2) noexcept;

/// True only for *proper* crossings: the open interiors intersect at a single
/// point (shared endpoints do not count). This is the predicate used by the
/// planarity checker, where adjacent edges legitimately share endpoints.
bool segments_cross_properly(const Segment& s1, const Segment& s2) noexcept;

/// Intersection point of the supporting lines, if not parallel.
std::optional<Vec2> line_intersection(const Segment& s1, const Segment& s2) noexcept;

/// Intersection point of the closed segments, if any (for collinear overlap
/// an arbitrary shared point is returned).
std::optional<Vec2> segment_intersection(const Segment& s1, const Segment& s2) noexcept;

/// Distance from point p to the closed segment s.
double point_segment_distance(Vec2 p, const Segment& s) noexcept;

/// Perpendicular-bisector intersection of segments (u,v1) and (u,v2) sharing
/// endpoint u — i.e. the circumcenter of triangle (u, v1, v2). Empty when the
/// three points are collinear. Used by the TENT rule (BOUNDHOLE).
std::optional<Vec2> circumcenter(Vec2 u, Vec2 v1, Vec2 v2) noexcept;

// Forward declaration (rect.h defines Rect; included by most users).
class Rect;

/// True when the closed segment intersects the closed rectangle (an
/// endpoint inside counts). Used by SLGF2's superseding rule to ask whether
/// an estimated unsafe area actually blocks the straight line to d.
bool segment_intersects_rect(const Segment& s, const Rect& r) noexcept;

}  // namespace spr
