#include "geometry/quadrant.h"

#include <cmath>
#include <ostream>

namespace spr {

Vec2 quadrant_diagonal(ZoneType t) noexcept {
  Vec2 s = quadrant_signs(t);
  constexpr double inv_sqrt2 = 0.7071067811865476;
  return {s.x * inv_sqrt2, s.y * inv_sqrt2};
}

std::ostream& operator<<(std::ostream& os, ZoneType t) {
  return os << "type-" << static_cast<int>(t);
}

}  // namespace spr
