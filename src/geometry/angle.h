#pragma once

/// \file angle.h
/// Angular utilities: normalized bearings and counter-clockwise ray scans.
///
/// Several algorithms in the paper are phrased as "rotate a ray ... counter-
/// clockwise until the first node is hit": the LGF perimeter phase (rotate
/// the ray u->d), the shape-anchor collection (scan Q_i(u) from the
/// quadrant's clockwise boundary), and the hand rules. This header provides
/// those scans as ordering predicates on bearings.

#include <numbers>

#include "geometry/vec2.h"

namespace spr {

inline constexpr double kPi = std::numbers::pi_v<double>;
inline constexpr double kTwoPi = 2.0 * std::numbers::pi_v<double>;

/// Bearing of vector v in [0, 2*pi), measured counter-clockwise from +x.
double bearing(Vec2 v) noexcept;

/// Bearing of the ray from `from` to `to`.
double bearing(Vec2 from, Vec2 to) noexcept;

/// Normalizes any angle into [0, 2*pi).
double normalize_angle(double radians) noexcept;

/// Counter-clockwise sweep from `start_bearing` to `target_bearing`,
/// in [0, 2*pi). A result of 0 means the target is exactly at the start ray.
double ccw_delta(double start_bearing, double target_bearing) noexcept;

/// Clockwise sweep from `start_bearing` to `target_bearing`, in [0, 2*pi).
double cw_delta(double start_bearing, double target_bearing) noexcept;

/// Angle of the corner a-b-c at vertex b, in [0, pi].
double interior_angle(Vec2 a, Vec2 b, Vec2 c) noexcept;

/// Comparator object: orders points around `pivot` by counter-clockwise
/// sweep starting at `start_bearing` (ties broken by distance to pivot,
/// nearer first). Points coincident with the pivot sort last.
class CcwScan {
 public:
  CcwScan(Vec2 pivot, double start_bearing) noexcept
      : pivot_(pivot), start_(start_bearing) {}

  /// Sweep needed to reach p from the start ray, in [0, 2*pi).
  double sweep_to(Vec2 p) const noexcept;

  bool operator()(Vec2 a, Vec2 b) const noexcept;

 private:
  Vec2 pivot_;
  double start_;
};

/// Clockwise counterpart of CcwScan.
class CwScan {
 public:
  CwScan(Vec2 pivot, double start_bearing) noexcept
      : pivot_(pivot), start_(start_bearing) {}

  double sweep_to(Vec2 p) const noexcept;
  bool operator()(Vec2 a, Vec2 b) const noexcept;

 private:
  Vec2 pivot_;
  double start_;
};

}  // namespace spr
