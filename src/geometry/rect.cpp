#include "geometry/rect.h"

#include <algorithm>
#include <cmath>
#include <ostream>

namespace spr {

double Rect::distance_to(Vec2 p) const noexcept {
  double dx = std::max({lo_.x - p.x, 0.0, p.x - hi_.x});
  double dy = std::max({lo_.y - p.y, 0.0, p.y - hi_.y});
  return std::hypot(dx, dy);
}

std::ostream& operator<<(std::ostream& os, const Rect& r) {
  return os << '[' << r.lo().x << ':' << r.hi().x << ", " << r.lo().y << ':'
            << r.hi().y << ']';
}

}  // namespace spr
