#include "geometry/polygon.h"

#include <cmath>

#include "geometry/angle.h"
#include "geometry/segment.h"

namespace spr {

Polygon Polygon::from_rect(const Rect& r) {
  return Polygon({r.lo(), {r.hi().x, r.lo().y}, r.hi(), {r.lo().x, r.hi().y}});
}

Polygon Polygon::regular(Vec2 center, double radius, int sides) {
  std::vector<Vec2> vs;
  vs.reserve(static_cast<size_t>(sides));
  for (int i = 0; i < sides; ++i) {
    double a = kTwoPi * i / sides;
    vs.push_back({center.x + radius * std::cos(a), center.y + radius * std::sin(a)});
  }
  return Polygon(std::move(vs));
}

bool Polygon::contains(Vec2 p) const noexcept {
  const std::size_t n = vertices_.size();
  if (n < 3) return false;
  // Boundary first: the even-odd ray cast below is unreliable exactly on
  // edges, and the FA model treats the boundary as forbidden.
  for (std::size_t i = 0; i < n; ++i) {
    if (on_segment({vertices_[i], vertices_[(i + 1) % n]}, p, 1e-9)) return true;
  }
  bool inside = false;
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    Vec2 a = vertices_[i], b = vertices_[j];
    bool straddles = (a.y > p.y) != (b.y > p.y);
    if (straddles) {
      double x_at = a.x + (p.y - a.y) * (b.x - a.x) / (b.y - a.y);
      if (p.x < x_at) inside = !inside;
    }
  }
  return inside;
}

double Polygon::signed_area() const noexcept {
  const std::size_t n = vertices_.size();
  if (n < 3) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    sum += vertices_[j].cross(vertices_[i]);
  }
  return 0.5 * sum;
}

double Polygon::area() const noexcept { return std::abs(signed_area()); }

double Polygon::perimeter() const noexcept {
  const std::size_t n = vertices_.size();
  if (n < 2) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    sum += distance(vertices_[j], vertices_[i]);
  }
  return sum;
}

Rect Polygon::bounding_box() const noexcept {
  if (vertices_.empty()) return {};
  Rect box = Rect::from_corners(vertices_.front(), vertices_.front());
  for (Vec2 v : vertices_) box = box.expanded_to(v);
  return box;
}

Vec2 Polygon::centroid() const noexcept {
  const std::size_t n = vertices_.size();
  if (n == 0) return {};
  double a = signed_area();
  if (std::abs(a) < 1e-12) {
    Vec2 sum{};
    for (Vec2 v : vertices_) sum += v;
    return sum / static_cast<double>(n);
  }
  Vec2 c{};
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    double w = vertices_[j].cross(vertices_[i]);
    c += (vertices_[j] + vertices_[i]) * w;
  }
  return c / (6.0 * a);
}

}  // namespace spr
