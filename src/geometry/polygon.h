#pragma once

/// \file polygon.h
/// Simple polygons: containment, area, perimeter. Used by the FA deployment
/// model (irregular forbidden areas) and by hole-boundary reporting.

#include <vector>

#include "geometry/rect.h"
#include "geometry/vec2.h"

namespace spr {

/// A simple polygon given by its vertices in order (either orientation).
class Polygon {
 public:
  Polygon() = default;
  explicit Polygon(std::vector<Vec2> vertices) : vertices_(std::move(vertices)) {}

  /// Convenience: the rectangle as a 4-gon (CCW).
  static Polygon from_rect(const Rect& r);

  /// Regular n-gon approximation of a disc (CCW), n >= 3.
  static Polygon regular(Vec2 center, double radius, int sides);

  const std::vector<Vec2>& vertices() const noexcept { return vertices_; }
  bool empty() const noexcept { return vertices_.empty(); }
  std::size_t size() const noexcept { return vertices_.size(); }

  /// Even-odd rule point containment; boundary points count as inside.
  bool contains(Vec2 p) const noexcept;

  /// Signed area (positive for CCW ordering).
  double signed_area() const noexcept;
  double area() const noexcept;
  double perimeter() const noexcept;

  Rect bounding_box() const noexcept;

  /// Centroid of the polygon (area-weighted); (0,0) for empty.
  Vec2 centroid() const noexcept;

 private:
  std::vector<Vec2> vertices_;
};

}  // namespace spr
