#include "geometry/angle.h"

#include <algorithm>
#include <cmath>

namespace spr {

double bearing(Vec2 v) noexcept { return normalize_angle(std::atan2(v.y, v.x)); }

double bearing(Vec2 from, Vec2 to) noexcept { return bearing(to - from); }

double normalize_angle(double radians) noexcept {
  double a = std::fmod(radians, kTwoPi);
  if (a < 0.0) a += kTwoPi;
  return a;
}

double ccw_delta(double start_bearing, double target_bearing) noexcept {
  return normalize_angle(target_bearing - start_bearing);
}

double cw_delta(double start_bearing, double target_bearing) noexcept {
  return normalize_angle(start_bearing - target_bearing);
}

double interior_angle(Vec2 a, Vec2 b, Vec2 c) noexcept {
  Vec2 ba = a - b;
  Vec2 bc = c - b;
  double na = ba.norm(), nc = bc.norm();
  if (na <= 0.0 || nc <= 0.0) return 0.0;
  double cosv = std::clamp(ba.dot(bc) / (na * nc), -1.0, 1.0);
  return std::acos(cosv);
}

double CcwScan::sweep_to(Vec2 p) const noexcept {
  return ccw_delta(start_, bearing(pivot_, p));
}

bool CcwScan::operator()(Vec2 a, Vec2 b) const noexcept {
  bool a_pivot = almost_equal(a, pivot_);
  bool b_pivot = almost_equal(b, pivot_);
  if (a_pivot != b_pivot) return b_pivot;  // pivot-coincident points last
  if (a_pivot) return false;
  double sa = sweep_to(a), sb = sweep_to(b);
  if (sa != sb) return sa < sb;
  return distance_sq(pivot_, a) < distance_sq(pivot_, b);
}

double CwScan::sweep_to(Vec2 p) const noexcept {
  return cw_delta(start_, bearing(pivot_, p));
}

bool CwScan::operator()(Vec2 a, Vec2 b) const noexcept {
  bool a_pivot = almost_equal(a, pivot_);
  bool b_pivot = almost_equal(b, pivot_);
  if (a_pivot != b_pivot) return b_pivot;
  if (a_pivot) return false;
  double sa = sweep_to(a), sb = sweep_to(b);
  if (sa != sb) return sa < sb;
  return distance_sq(pivot_, a) < distance_sq(pivot_, b);
}

}  // namespace spr
