#pragma once

/// \file hull.h
/// Convex hull (Andrew monotone chain). The paper's "hull algorithm" is used
/// to delimit the interest area: nodes on (or near) the hull are *edge nodes*
/// whose safety tuple stays (1,1,1,1).

#include <vector>

#include "geometry/polygon.h"
#include "geometry/vec2.h"

namespace spr {

/// Convex hull of `points` in counter-clockwise order. Collinear points on
/// the hull boundary are dropped. Degenerate inputs (<3 distinct points)
/// return the distinct points.
std::vector<Vec2> convex_hull(std::vector<Vec2> points);

/// Indices into `points` of the hull vertices, CCW. Stable w.r.t. the input:
/// each hull vertex reports the first index carrying that coordinate.
std::vector<std::size_t> convex_hull_indices(const std::vector<Vec2>& points);

/// The hull as a polygon.
Polygon convex_hull_polygon(const std::vector<Vec2>& points);

/// Distance from `p` to the hull boundary (0 if `p` is a hull vertex;
/// positive otherwise, whether inside or outside).
double distance_to_hull_boundary(const std::vector<Vec2>& hull, Vec2 p);

}  // namespace spr
